"""Seeded page sampling and match-count estimation for approximate scans.

Historical log exploration rarely needs exact counts on the first few
iterations of a query (logservatory's *percentage sampling* mode, see
SNIPPETS.md §1): scanning a deterministic fraction of the candidate
pages and returning an estimate with a confidence interval answers
"roughly how often does this happen?" at a fraction of the accelerator
cost. The same mode doubles as the service's approximate admission
class: under overload a shed becomes a cheap sampled answer instead
(see ``docs/STREAMING.md``).

Two properties matter more than the estimator itself:

- **Determinism** — whether a page is in the sample depends only on
  ``(seed, template fingerprint, page id)``, hashed with sha1 (stable
  across processes and ``PYTHONHASHSEED``). The selection happens in
  the parent *before* the scan executor partitions pages over workers,
  so results are worker-count- and backend-invariant and any run can be
  replayed exactly (pinned by ``tests/differential``).
- **Honest uncertainty** — each page is an independent Bernoulli draw
  at rate ``fraction``, so the Horvitz–Thompson estimate of the total
  match count is ``seen / fraction`` and, modelling per-page counts as
  roughly even (template-interleaved ingest spreads a template's lines
  across pages), its variance is ``seen * (1 - f) / f**2``. The normal
  approximation gives the reported interval; stdlib ``math`` only — the
  estimator must work on the no-numpy CI leg.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import QueryError

#: two-sided z-scores for the confidence levels the CLI exposes
_Z_SCORES = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}

DEFAULT_CONFIDENCE = 0.95


def page_in_sample(
    seed: int, fingerprint: str, page_addr: int, fraction: float
) -> bool:
    """Is ``page_addr`` in the sample for this (seed, query) pair?

    The sha1 of ``seed:fingerprint:page_addr`` is mapped to [0, 1);
    the page is sampled iff it lands below ``fraction``. No RNG state:
    the decision is a pure function, so it cannot depend on scan order,
    worker count, or backend.
    """
    digest = hashlib.sha1(
        f"{seed}:{fingerprint}:{page_addr}".encode()
    ).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return draw < fraction


def sample_pages(
    candidates: Sequence[int], seed: int, fingerprint: str, fraction: float
) -> list[int]:
    """The deterministic sampled subset of ``candidates``, order kept.

    Always keeps at least one page when there are candidates: an empty
    sample would silently turn "estimate" into "no data".
    """
    if not 0.0 < fraction < 1.0:
        raise QueryError("sample fraction must be in (0, 1)")
    kept = [
        page
        for page in candidates
        if page_in_sample(seed, fingerprint, page, fraction)
    ]
    if not kept and candidates:
        # deterministic fallback: the candidate with the smallest draw
        kept = [
            min(
                candidates,
                key=lambda page: hashlib.sha1(
                    f"{seed}:{fingerprint}:{page}".encode()
                ).digest(),
            )
        ]
    return kept


@dataclass(frozen=True)
class SampleEstimate:
    """One query's sampled-scan answer: estimate plus uncertainty."""

    matches_seen: int  #: raw matches on the sampled pages
    pages_scanned: int
    pages_total: int  #: candidate pages before sampling
    fraction: float  #: the *configured* Bernoulli sampling rate
    estimate: float  #: Horvitz–Thompson estimate of the true count
    ci_low: float
    ci_high: float
    confidence: float  #: nominal two-sided coverage of [ci_low, ci_high]

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def relative_error(self, true_count: int) -> float:
        """|estimate - truth| / truth, with a floor of one match."""
        return abs(self.estimate - true_count) / max(true_count, 1)

    def covers(self, true_count: int) -> bool:
        return self.ci_low <= true_count <= self.ci_high

    def to_dict(self) -> dict:
        return {
            "matches_seen": self.matches_seen,
            "pages_scanned": self.pages_scanned,
            "pages_total": self.pages_total,
            "fraction": self.fraction,
            "estimate": round(self.estimate, 4),
            "ci_low": round(self.ci_low, 4),
            "ci_high": round(self.ci_high, 4),
            "confidence": self.confidence,
        }


def estimate_matches(
    matches_seen: int,
    pages_scanned: int,
    pages_total: int,
    fraction: float,
    confidence: float = DEFAULT_CONFIDENCE,
) -> SampleEstimate:
    """Scale a sampled match count back to the full candidate set.

    Uses the *realised* sampling rate (``pages_scanned/pages_total``)
    for the point estimate — it is known exactly, and conditioning on
    it removes the variance of the sample size itself — and the normal
    approximation ``±z * sqrt(seen * (1 - f)) / f`` for the interval.
    With zero matches seen, the interval upper bound falls back to the
    rule-of-three bound (3/f) instead of a degenerate [0, 0].
    """
    if pages_total <= 0 or pages_scanned <= 0:
        return SampleEstimate(
            matches_seen=matches_seen,
            pages_scanned=pages_scanned,
            pages_total=pages_total,
            fraction=fraction,
            estimate=float(matches_seen),
            ci_low=float(matches_seen),
            ci_high=float(matches_seen),
            confidence=confidence,
        )
    z = _Z_SCORES.get(round(confidence, 2))
    if z is None:
        raise QueryError(
            f"unsupported confidence {confidence}; "
            f"choose from {sorted(_Z_SCORES)}"
        )
    realised = pages_scanned / pages_total
    if pages_scanned >= pages_total:
        # degenerate sample: every candidate scanned, the count is exact
        exact = float(matches_seen)
        return SampleEstimate(
            matches_seen=matches_seen,
            pages_scanned=pages_scanned,
            pages_total=pages_total,
            fraction=fraction,
            estimate=exact,
            ci_low=exact,
            ci_high=exact,
            confidence=confidence,
        )
    estimate = matches_seen / realised
    if matches_seen == 0:
        half = 0.0
        hi = 3.0 / realised  # rule of three: 95%-ish bound on a zero count
    else:
        half = z * math.sqrt(matches_seen * (1.0 - realised)) / realised
        hi = estimate + half
    return SampleEstimate(
        matches_seen=matches_seen,
        pages_scanned=pages_scanned,
        pages_total=pages_total,
        fraction=fraction,
        estimate=estimate,
        ci_low=max(0.0, estimate - half),
        ci_high=hi,
        confidence=confidence,
    )
