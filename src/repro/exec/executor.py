"""Parallel scan executor: one storage pass, many queries, many cores.

The paper's batched-query experiment (Table 6) keeps effective
throughput flat as the query count grows because the accelerator
evaluates every registered query in the same pass over the decompressed
stream. This module is the host-simulation counterpart: a
:class:`ScanExecutor` takes the candidate pages of a scan, partitions
them, and fans the CPU-heavy work — LZAH decode, tokenization, filter
evaluation for *all* queries at once — out over a process pool, while
flash reads, fault injection, retry accounting and simulated timing stay
in the calling process, in page order, exactly as the serial path does.

The partition kernel itself comes in two equivalence-tested variants,
selected by :class:`ScanProgramSpec.kernel`:

- ``vectorized`` — the zero-copy hot path: pages decompress into a
  reusable :class:`~repro.compression.arena.DecodeArena`, tokenization
  emits offset arrays (``repro.core.vectokenizer``), and the filter runs
  the signature-prefiltered array kernel
  (:meth:`~repro.core.hashfilter.HashFilter.evaluate_token_arrays` for
  offloaded programs, :class:`~repro.core.softmatch
  .SoftwareBatchMatcher` for programs that exceeded hardware
  provisioning and run in software).
- ``reference`` — PR 3's per-page token-list path, retained verbatim as
  the oracle the differential suite compares against.

Determinism is by construction: ``workers=1`` runs the very same
partition kernel inline (no pool, no processes), partitions are
contiguous slices of the candidate list, and results are concatenated in
partition order. A seeded fault schedule therefore sees the identical
read sequence at any worker count, and the scan output is byte-identical
to the serial device FILTER path (the equivalence suite pins this down).

Only host wall-clock changes. Simulated stage times and ``hw/perf``
cycle accounting are functions of byte counts that this module
reproduces exactly.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.hashfilter import compile_queries
from repro.core.query import Query
from repro.core.tokenizer import tokenize_page
from repro.errors import QueryError
from repro.obs.metrics import get_registry
from repro.obs.profile import (
    PartitionProfile,
    ProfileBuilder,
    StageProfile,
    merge_into_registry,
    merge_profiles,
)
from repro.params import CuckooParams, LZAHParams


@dataclass(frozen=True)
class ScanProgramSpec:
    """Everything a worker needs to rebuild the scan program.

    Workers recompile the query program from first principles
    (:func:`repro.core.hashfilter.compile_queries` is deterministic in
    ``(queries, params, seed)``), so nothing stateful crosses the process
    boundary — only frozen parameter dataclasses, query algebra, and the
    resolved kernel/backend names. The parent resolves ``kernel`` and
    ``backend`` (env vars, numpy availability) *before* building the
    spec so every pool worker runs the same code path even if its own
    environment would resolve differently.
    """

    queries: tuple[Query, ...]
    cuckoo_params: CuckooParams
    seed: int
    offloaded: bool
    lzah_params: LZAHParams
    kernel: str = "reference"
    backend: str = "fallback"


@dataclass(frozen=True)
class ScanAggregate:
    """What one scan produced, in the units the system's stats need.

    ``partitions`` carries one :class:`~repro.obs.profile
    .PartitionProfile` per executed partition (a single record on the
    inline path), in page order — the per-partition view the parent
    turns into trace spans. ``profile`` is their stage-wise merge.
    ``per_query_counts`` is the number of kept lines per concurrent
    query (partition sums — worker-count invariant); ``decoded`` is only
    populated on the inline path when the caller asked for the decoded
    pages back (one immutable ``bytes`` per item, ``None`` for pages
    that arrived already decoded), so the parent can feed its PageCache
    without a second decompression pass.
    """

    data: bytes  #: concatenated per-page FILTER output (kept lines)
    bytes_decompressed: int
    lines_seen: int
    lines_kept: int
    partitions: tuple[PartitionProfile, ...] = ()
    profile: tuple[tuple[str, StageProfile], ...] = ()
    per_query_counts: tuple[int, ...] = ()
    decoded: tuple = ()

    def profile_dict(self) -> dict[str, StageProfile]:
        return dict(self.profile)


@dataclass(frozen=True)
class KernelResult:
    """One partition's output (picklable — crosses the pool boundary)."""

    data: bytes
    bytes_decompressed: int
    lines_seen: int
    lines_kept: int
    per_query_counts: tuple[int, ...]
    stages: tuple[tuple[str, StageProfile], ...]
    decoded: tuple = ()


#: Per-process memo of compiled filter programs, keyed by the hashable
#: ``(queries, cuckoo_params, seed)`` triple: a pool worker serving many
#: partitions of many scans compiles each program once.
_PROGRAM_MEMO: dict = {}

#: Per-process memo of LZAH codecs by parameter bundle.
_CODEC_MEMO: dict = {}

#: Per-process decode arena, grown to the largest page seen and recycled
#: across partitions and scans (the zero-copy path's whole point).
_ARENA = None

#: Per-process memo of software batch matchers, keyed by the query tuple.
_MATCHER_MEMO: dict = {}


def _partition_kernel(
    spec: ScanProgramSpec,
    items: Sequence[tuple[bool, bytes]],
    want_decoded: bool = False,
) -> KernelResult:
    """Scan one contiguous partition of pages.

    ``items`` holds ``(is_decoded, payload)`` pairs in page order: cache
    hits arrive already decoded, misses arrive compressed and are decoded
    here (this is the work the fan-out parallelises). The returned
    :class:`KernelResult` carries ``data`` byte-identical to the device
    FILTER path's per-page output and per-stage host accounting — the
    record that makes subprocess work visible to the parent's registry
    and tracer (pool workers' own metrics die with the pool).

    Module-level and argument-picklable so it runs identically inline
    (``workers=1``) and in a pool worker.
    """
    from repro.core.hashfilter import HashFilter

    if spec.kernel == "vectorized":
        return _vectorized_kernel(spec, items, want_decoded)

    from repro.compression.lzah import LZAHCompressor

    codec = _CODEC_MEMO.get(spec.lzah_params)
    if codec is None:
        codec = LZAHCompressor(spec.lzah_params)
        _CODEC_MEMO[spec.lzah_params] = codec
    decode = codec.decompress

    verdict_fn = None
    if spec.offloaded:
        program = _compiled_program(spec)
        verdict_fn = HashFilter(program).evaluate_token_lists
    queries = spec.queries
    num_queries = len(queries)

    profile = ProfileBuilder()
    clock = time.perf_counter
    out_chunks: list[bytes] = []
    decoded_pages: list = []
    counts = [0] * num_queries
    bytes_decompressed = 0
    lines_seen = 0
    lines_kept = 0
    for is_decoded, payload in items:
        if is_decoded:
            text = payload  # cache hit: the decode was skipped upstream
            if want_decoded:
                decoded_pages.append(None)
        else:
            t0 = clock()
            text = decode(payload)
            profile.add("decompress", units=len(text), wall_s=clock() - t0)
            if want_decoded:
                decoded_pages.append(text)
        bytes_decompressed += len(text)
        t0 = clock()
        raw_lines, token_lists = tokenize_page(text)
        profile.add("tokenize", units=len(raw_lines), wall_s=clock() - t0)
        lines_seen += len(raw_lines)
        t0 = clock()
        if verdict_fn is not None:
            verdicts = verdict_fn(token_lists)
        else:
            verdicts = [
                tuple(q.matches_tokens(tokens) for q in queries)
                for tokens in token_lists
            ]
        kept = []
        for line, verdict in zip(raw_lines, verdicts):
            if True in verdict:
                kept.append(line)
                for q in range(num_queries):
                    if verdict[q]:
                        counts[q] += 1
        profile.add("filter", units=len(raw_lines), wall_s=clock() - t0)
        lines_kept += len(kept)
        out_chunks.append(b"\n".join(kept) + (b"\n" if kept else b""))
    return KernelResult(
        data=b"".join(out_chunks),
        bytes_decompressed=bytes_decompressed,
        lines_seen=lines_seen,
        lines_kept=lines_kept,
        per_query_counts=tuple(counts),
        stages=profile.build_items(),
        decoded=tuple(decoded_pages) if want_decoded else (),
    )


def _vectorized_kernel(
    spec: ScanProgramSpec,
    items: Sequence[tuple[bool, bytes]],
    want_decoded: bool,
) -> KernelResult:
    """Zero-copy partition scan: arena decode → offset arrays → batch filter.

    Produces a :class:`KernelResult` byte-identical to the reference
    kernel's (the differential suite and the workers×kernel invariance
    tests pin this down), including identical stage calls/units — only
    wall-clock differs.
    """
    from repro.compression.arena import DecodeArena
    from repro.compression.lzah import LZAHCompressor
    from repro.core.hashfilter import HashFilter
    from repro.core.vectokenizer import tokenize_page_offsets

    global _ARENA
    codec = _CODEC_MEMO.get(spec.lzah_params)
    if codec is None:
        codec = LZAHCompressor(spec.lzah_params)
        _CODEC_MEMO[spec.lzah_params] = codec
    if _ARENA is None:
        _ARENA = DecodeArena()
    arena = _ARENA
    if spec.offloaded:
        evaluate = HashFilter(_compiled_program(spec)).evaluate_token_arrays
    else:
        evaluate = _software_matcher(spec.queries).evaluate
    backend = spec.backend
    num_queries = len(spec.queries)

    profile = ProfileBuilder()
    clock = time.perf_counter
    out_chunks: list[bytes] = []
    decoded_pages: list = []
    counts = [0] * num_queries
    bytes_decompressed = 0
    lines_seen = 0
    lines_kept = 0
    for is_decoded, payload in items:
        if is_decoded:
            text = payload
            if want_decoded:
                decoded_pages.append(None)
        else:
            t0 = clock()
            text = codec.decompress_into(payload, arena)
            profile.add("decompress", units=len(text), wall_s=clock() - t0)
            if want_decoded:
                decoded_pages.append(bytes(text))
        bytes_decompressed += len(text)
        t0 = clock()
        page = tokenize_page_offsets(text, backend)
        profile.add("tokenize", units=page.num_lines, wall_s=clock() - t0)
        lines_seen += page.num_lines
        t0 = clock()
        verdicts = evaluate(page)
        kept = []
        for i, verdict in enumerate(verdicts):
            if True in verdict:
                kept.append(page.line_bytes(i))
                for q in range(num_queries):
                    if verdict[q]:
                        counts[q] += 1
        profile.add("filter", units=page.num_lines, wall_s=clock() - t0)
        lines_kept += len(kept)
        # kept lines are immutable copies, so recycling the arena for the
        # next page (the decompress_into above) cannot corrupt them
        out_chunks.append(b"\n".join(kept) + (b"\n" if kept else b""))
    return KernelResult(
        data=b"".join(out_chunks),
        bytes_decompressed=bytes_decompressed,
        lines_seen=lines_seen,
        lines_kept=lines_kept,
        per_query_counts=tuple(counts),
        stages=profile.build_items(),
        decoded=tuple(decoded_pages) if want_decoded else (),
    )


def _software_matcher(queries: tuple[Query, ...]):
    matcher = _MATCHER_MEMO.get(queries)
    if matcher is None:
        from repro.core.softmatch import SoftwareBatchMatcher

        matcher = SoftwareBatchMatcher(queries)
        _MATCHER_MEMO[queries] = matcher
    return matcher


def _compiled_program(spec: ScanProgramSpec):
    memo_key = (spec.queries, spec.cuckoo_params, spec.seed)
    program = _PROGRAM_MEMO.get(memo_key)
    if program is None:
        program = compile_queries(
            spec.queries, params=spec.cuckoo_params, seed=spec.seed
        )
        _PROGRAM_MEMO[memo_key] = program
    return program


class ScanExecutor:
    """Partitions a scan's pages and runs the partition kernel on them.

    ``workers == 1`` is the deterministic in-process fallback: the kernel
    runs inline in the calling process and no pool is ever created, so
    anything the caller keeps deterministic (seeded fault schedules,
    sim-clock traces) stays bit-identical. ``workers > 1`` lazily spins
    up a :class:`~concurrent.futures.ProcessPoolExecutor` that is reused
    across scans until :meth:`close`.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise QueryError("scan executor needs at least one worker")
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        registry = get_registry()
        self._m_partitions = (
            registry.counter(
                "mithrilog_scan_partitions_total",
                "Scan partitions executed, by execution mode",
                labelnames=("mode",),
            )
            if registry is not None
            else None
        )

    # -- lifecycle -------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ScanExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scanning --------------------------------------------------------

    def scan(
        self,
        spec: ScanProgramSpec,
        items: Sequence[tuple[bool, bytes]],
        want_decoded: bool = False,
    ) -> ScanAggregate:
        """Run the filter scan over ``items`` (page order preserved).

        Partitions are contiguous slices, results are gathered in
        partition order, and a worker failure (e.g. a corrupt page's
        :class:`repro.errors.CompressedFormatError`) propagates to the
        caller exactly as the inline path would raise it.
        ``want_decoded`` is honoured on the inline path only — on the
        pool path the decoded pages stay in the workers (shipping them
        back would dwarf the scan itself).
        """
        if self.workers == 1 or len(items) <= 1:
            if self._m_partitions is not None:
                self._m_partitions.inc(mode="inline")
            result = _partition_kernel(spec, items, want_decoded)
            record = PartitionProfile(
                index=0,
                pages=len(items),
                bytes_decompressed=result.bytes_decompressed,
                lines_seen=result.lines_seen,
                lines_kept=result.lines_kept,
                stages=result.stages,
            )
            merge_into_registry(dict(result.stages))
            return ScanAggregate(
                data=result.data,
                bytes_decompressed=result.bytes_decompressed,
                lines_seen=result.lines_seen,
                lines_kept=result.lines_kept,
                partitions=(record,),
                profile=result.stages,
                per_query_counts=result.per_query_counts,
                decoded=result.decoded,
            )
        pool = self._ensure_pool()
        partitions = _partition_slices(len(items), self.workers)
        futures = [
            pool.submit(_partition_kernel, spec, items[start:stop])
            for start, stop in partitions
        ]
        if self._m_partitions is not None:
            self._m_partitions.inc(len(futures), mode="pool")
        chunks: list[bytes] = []
        records: list[PartitionProfile] = []
        counts = [0] * len(spec.queries)
        bytes_decompressed = 0
        lines_seen = 0
        lines_kept = 0
        for index, future in enumerate(futures):  # partition order
            result = future.result()
            chunks.append(result.data)
            start, stop = partitions[index]
            records.append(
                PartitionProfile(
                    index=index,
                    pages=stop - start,
                    bytes_decompressed=result.bytes_decompressed,
                    lines_seen=result.lines_seen,
                    lines_kept=result.lines_kept,
                    stages=result.stages,
                )
            )
            bytes_decompressed += result.bytes_decompressed
            lines_seen += result.lines_seen
            lines_kept += result.lines_kept
            for q, count in enumerate(result.per_query_counts):
                counts[q] += count
        merged = merge_profiles(r.stage_dict() for r in records)
        # the workers' registries died with their processes; fold their
        # accounting into the parent's here, where it is actually scraped
        merge_into_registry(merged)
        return ScanAggregate(
            data=b"".join(chunks),
            bytes_decompressed=bytes_decompressed,
            lines_seen=lines_seen,
            lines_kept=lines_kept,
            partitions=tuple(records),
            profile=tuple(sorted(merged.items())),
            per_query_counts=tuple(counts),
        )


def _partition_slices(n: int, workers: int) -> list[tuple[int, int]]:
    """Split ``n`` items into at most ``workers`` contiguous balanced slices."""
    if n <= 0:
        return []
    parts = min(workers, n)
    base, extra = divmod(n, parts)
    slices = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        slices.append((start, start + size))
        start += size
    return slices
