"""Scan execution: multi-query batching, page caching, worker fan-out.

The functional simulation's query hot path — flash read, LZAH decode,
tokenize, filter — is pure Python; this package makes it run as fast as
the host allows without moving a single simulated number:

- :class:`~repro.exec.executor.ScanExecutor` partitions a scan's pages
  over a process pool (deterministic in-process fallback at
  ``workers=1``),
- :class:`~repro.exec.cache.PageCache` is a bounded LRU of decompressed
  pages, fingerprint-guarded and invalidated on every flash write,
- one decompress+tokenize pass per page feeds *all* registered query
  filters, mirroring the paper's batched-query mode.

See ``docs/PERFORMANCE.md`` for the architecture and the determinism
guarantees, and ``benchmarks/bench_hotpath.py`` for the wall-clock
trajectory these pieces are measured by.
"""

from repro.exec.cache import DEFAULT_CACHE_PAGES, PageCache, payload_fingerprint
from repro.exec.executor import (
    KernelResult,
    ScanAggregate,
    ScanExecutor,
    ScanProgramSpec,
)

__all__ = [
    "DEFAULT_CACHE_PAGES",
    "KernelResult",
    "PageCache",
    "payload_fingerprint",
    "ScanAggregate",
    "ScanExecutor",
    "ScanProgramSpec",
]
