"""Bounded LRU cache of decompressed flash pages.

Template queries hit the same candidate pages over and over (the paper's
batched-query workload re-reads whole segments per batch), and LZAH
decode is the most expensive host-side step of the functional
simulation. The :class:`PageCache` lets repeated scans skip it entirely:
entries are keyed by ``(device, page address, codec)`` and guarded by a
fingerprint of the *compressed* payload, so a page that was rewritten,
compacted, or handed back corrupted by a fault injector never serves a
stale or wrongly-clean decode — a corrupted payload misses the cache and
flows through the real decoder, raising exactly the error the uncached
path would.

Invalidation is event-driven: the owning system registers a write
listener on its flash array (:attr:`repro.storage.flash.FlashArray
.write_listeners`), so every page write — ingest appends, FTL moves,
index compaction — drops the stale entry immediately, in O(1).

The cache only ever changes host wall-clock time. Simulated timing and
``hw/perf`` cycle accounting are computed from byte counts that are
identical with and without it.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Callable, Hashable, Optional

from repro.obs.metrics import get_registry

#: Default capacity in pages (~a few MB of decompressed text at the
#: prototype's 8 KiB pages and ~2x compression).
DEFAULT_CACHE_PAGES = 1024


def payload_fingerprint(payload: bytes) -> tuple[int, int]:
    """Cheap identity check for a compressed payload.

    Length plus CRC32 — a C-speed fraction of an LZAH decode. Two
    payloads with the same fingerprint are treated as identical; a
    bit-flipped page (fault injection, silent corruption) changes the
    CRC and therefore misses, preserving the uncached error behaviour.
    """
    return len(payload), zlib.crc32(payload)


class PageCache:
    """LRU map from ``(device, page, codec)`` to decompressed page text.

    The LRU is keyed by ``(device, page address)`` — the granularity
    writes invalidate at — and each entry carries the codec key and
    payload fingerprint it was decoded under; both must match on lookup.
    One decode is cached per page, which is exact for a store's single
    codec and merely conservative if codecs were ever mixed.

    ``max_pages <= 0`` disables caching entirely (every lookup misses and
    nothing is stored) — the configuration the benchmarks use for their
    pre-cache baselines.
    """

    def __init__(self, max_pages: int = DEFAULT_CACHE_PAGES) -> None:
        self.max_pages = max_pages
        # (device_key, address) -> (codec_key, fingerprint, decoded)
        self._entries: "OrderedDict[tuple[int, int], tuple[Hashable, tuple[int, int], bytes]]" = (
            OrderedDict()
        )
        registry = get_registry()
        if registry is not None:
            self._m_hits = registry.counter(
                "mithrilog_scan_cache_hits_total",
                "Decompressed-page cache hits (LZAH decodes skipped)",
            )
            self._m_misses = registry.counter(
                "mithrilog_scan_cache_misses_total",
                "Decompressed-page cache misses",
            )
            self._m_evictions = registry.counter(
                "mithrilog_scan_cache_evictions_total",
                "Decompressed pages evicted by the LRU bound",
            )
            self._m_pages = registry.gauge(
                "mithrilog_scan_cache_pages",
                "Decompressed pages currently cached",
            )
        else:
            self._m_hits = None
            self._m_misses = None
            self._m_evictions = None
            self._m_pages = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ----------------------------------------------------------

    def get(
        self,
        device_key: int,
        address: int,
        codec_key: Hashable,
        payload: bytes,
    ) -> Optional[bytes]:
        """The cached decode for this page, or ``None`` on a miss.

        The stored codec key and payload fingerprint must both match; a
        fingerprint mismatch (the page changed under the key, or the read
        handed back a corrupted copy) is a miss, so the caller decodes —
        and fails — exactly as it would without the cache.
        """
        entry = self._entries.get((device_key, address))
        if (
            entry is not None
            and entry[0] == codec_key
            and entry[1] == payload_fingerprint(payload)
        ):
            self._entries.move_to_end((device_key, address))
            self.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return entry[2]
        self.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        return None

    def get_or_decode(
        self,
        device_key: int,
        address: int,
        codec_key: Hashable,
        payload: bytes,
        decode: Callable[[bytes], bytes],
    ) -> bytes:
        """Return the decode of ``payload``, serving from cache when clean."""
        cached = self.get(device_key, address, codec_key, payload)
        if cached is not None:
            return cached
        decoded = decode(payload)
        self.put(device_key, address, codec_key, payload, decoded)
        return decoded

    # -- updates ---------------------------------------------------------

    def put(
        self,
        device_key: int,
        address: int,
        codec_key: Hashable,
        payload: bytes,
        decoded: bytes,
    ) -> None:
        """Store one decode, evicting the least recently used past the bound."""
        if self.max_pages <= 0:
            return
        if not isinstance(decoded, bytes):
            # the zero-copy scan path decodes into a recycled arena; a
            # memoryview/bytearray stored here would be silently rewritten
            # by the *next* page's decode and serve stale bytes forever
            # after — snapshot to immutable bytes at the cache boundary
            decoded = bytes(decoded)
        entries = self._entries
        entries[(device_key, address)] = (
            codec_key,
            payload_fingerprint(payload),
            decoded,
        )
        entries.move_to_end((device_key, address))
        while len(entries) > self.max_pages:
            entries.popitem(last=False)
            self.evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.inc()
        if self._m_pages is not None:
            self._m_pages.set(len(entries))

    def invalidate(self, device_key: int, address: int) -> None:
        """Drop the entry for one page of one device (O(1)).

        Called from the flash write listener on every page write —
        ingest appends, explicit writes, FTL garbage-collection moves and
        index compaction all funnel through the same two write methods.
        """
        if self._entries.pop((device_key, address), None) is not None:
            if self._m_pages is not None:
                self._m_pages.set(len(self._entries))

    def clear(self) -> None:
        """Drop everything (used when a store is reloaded wholesale)."""
        self._entries.clear()
        if self._m_pages is not None:
            self._m_pages.set(0)
