"""The service vocabulary: requests, outcomes, responses, tenant configs.

The front door of the multi-tenant service speaks in :class:`Request`
objects — *who* is asking (``tenant``), *what* they want (a compiled
:class:`repro.core.query.Query` or its textual form), *how urgent* it is
(``priority``), and *how long the answer stays useful* (``deadline_s``).
Every submitted request receives exactly one :class:`Response` whose
:class:`Outcome` is explicit: the service never blocks a caller forever
and never drops work silently. That one-response-per-request contract is
what the conservation property test pins:
``ok + rejected + shed + timed_out + approximated == submitted`` for
every tenant.

Requests may opt into the *approximate* admission class by setting
``sample_fraction``: under overload, instead of shedding such a request
outright the service degrades it to a sampled scan over a seeded
fraction of candidate pages and answers with an estimate plus a
confidence interval (outcome ``APPROXIMATED``) — a cheap answer instead
of no answer. See ``docs/STREAMING.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.query import Query, parse_query
from repro.errors import QueryError


class Outcome(enum.Enum):
    """The five ways a request leaves the service — always exactly one.

    - ``OK`` — executed; the response carries matches and latency.
    - ``REJECTED`` — refused before queuing (queue full, rate limit,
      quota exhausted, unknown tenant, or an injected compile reject).
    - ``SHED`` — admitted but dropped under overload: a lowest-priority
      victim evicted so higher-priority work keeps its latency bound.
    - ``TIMED_OUT`` — its deadline passed while it waited; cancelled
      before wasting an accelerator pass on a stale answer.
    - ``APPROXIMATED`` — answered with a sampled-scan estimate instead
      of an exact count: the request opted in via ``sample_fraction``
      and overload degraded it rather than shedding it.
    """

    OK = "ok"
    REJECTED = "rejected"
    SHED = "shed"
    TIMED_OUT = "timed_out"
    APPROXIMATED = "approximated"


@dataclass(frozen=True)
class Request:
    """One tenant query submitted to the service.

    ``arrival_s`` is the *simulated* arrival time, relative to the start
    of the service run (the run rebases onto the system clock, so a
    store whose clock already advanced during ingest still sees queue
    times measured from each request's own arrival). ``deadline_s`` is
    relative to arrival: the answer is useless ``deadline_s`` seconds
    after the request arrived.
    """

    tenant: str
    query: Query
    priority: int = 0  #: higher is more important; sheds last
    deadline_s: Optional[float] = None  #: seconds after arrival; None = patient
    arrival_s: float = 0.0  #: simulated arrival offset within the run
    #: opt-in to the approximate admission class: when overload would
    #: shed this request, degrade it to a sampled scan over this seeded
    #: fraction of candidate pages instead (None = exact answers only)
    sample_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise QueryError("request needs a tenant name")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise QueryError("deadline_s must be positive when given")
        if self.arrival_s < 0:
            raise QueryError("arrival_s cannot be negative")
        if self.sample_fraction is not None and not (
            0.0 < self.sample_fraction < 1.0
        ):
            raise QueryError("sample_fraction must be in (0, 1) when given")


def coerce_query(query: Union[Query, str, bytes]) -> Query:
    """Validate/compile the query form a caller handed the front door."""
    if isinstance(query, Query):
        return query
    if isinstance(query, bytes):
        query = query.decode()
    if isinstance(query, str):
        return parse_query(query)
    raise QueryError(f"cannot interpret {type(query).__name__} as a query")


@dataclass(frozen=True)
class Response:
    """The service's one-and-only answer to a request."""

    request: Request
    outcome: Outcome
    reason: str = ""  #: machine-readable cause (``queue_full``, ``rate_limit``...)
    queue_time_s: float = 0.0  #: arrival -> service start (simulated)
    service_time_s: float = 0.0  #: the accelerator pass the request rode
    completed_at_s: float = 0.0  #: absolute simulated completion time
    matches: int = 0  #: lines the query matched (OK outcomes only)
    batch_size: int = 0  #: queries sharing the accelerator pass
    degraded: bool = False  #: cluster answered with at least one shard down
    #: bottleneck stage of the accelerator pass this request rode
    #: (``flash``/``decompress``/``filter``/``host``; "" when no pass
    #: ran) — what the query journal's per-stage slicing keys on
    bottleneck: str = ""
    #: APPROXIMATED only: the sampled-scan estimate the answer carries
    #: (``matches`` then holds the *raw* sampled match count). A
    #: :class:`repro.stream.sampling.SampleEstimate`.
    estimate: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.outcome is Outcome.OK

    @property
    def answered(self) -> bool:
        """The caller got an answer: exact (OK) or estimated."""
        return self.outcome in (Outcome.OK, Outcome.APPROXIMATED)

    @property
    def latency_s(self) -> float:
        """End-to-end simulated latency: queueing plus the shared pass."""
        return self.queue_time_s + self.service_time_s


@dataclass(frozen=True)
class TenantConfig:
    """Admission-control knobs for one tenant.

    ``weight`` drives the QoS scheduler's weighted-fair drain;
    ``queue_limit`` bounds the admission queue (the bounded-buffer half
    of backpressure); ``rate_per_s``/``burst`` parameterise the token
    bucket (the rate half); ``quota_queries`` is an absolute budget for
    the whole run (accounting, e.g. a free tier).
    """

    name: str
    weight: float = 1.0
    queue_limit: int = 64
    rate_per_s: float = float("inf")  #: token refill rate; inf = unlimited
    burst: Optional[float] = None  #: bucket capacity; None = max(rate, 1)
    quota_queries: Optional[int] = None  #: absolute per-run budget

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("tenant needs a name")
        if self.weight <= 0:
            raise QueryError(f"tenant {self.name}: weight must be positive")
        if self.queue_limit <= 0:
            raise QueryError(f"tenant {self.name}: queue_limit must be positive")
        if self.rate_per_s <= 0:
            raise QueryError(f"tenant {self.name}: rate_per_s must be positive")
        if self.burst is not None and self.burst <= 0:
            raise QueryError(f"tenant {self.name}: burst must be positive")
        if self.quota_queries is not None and self.quota_queries < 0:
            raise QueryError(f"tenant {self.name}: quota cannot be negative")

    @property
    def bucket_capacity(self) -> float:
        if self.burst is not None:
            return self.burst
        if self.rate_per_s == float("inf"):
            return float("inf")
        return max(self.rate_per_s, 1.0)


@dataclass
class TenantStats:
    """Per-tenant outcome accounting; one row of the service report."""

    submitted: int = 0
    completed: int = 0  #: OK responses
    rejected: int = 0
    shed: int = 0
    timed_out: int = 0
    approximated: int = 0  #: answered with a sampled-scan estimate
    latencies_s: list[float] = field(default_factory=list)  #: answered only

    def note_submitted(self) -> None:
        """Counted at intake, *before* any outcome — so :meth:`conserved`
        genuinely cross-checks intake against the five outcome tallies
        instead of trivially restating them."""
        self.submitted += 1

    def record(self, response: Response) -> None:
        if response.outcome is Outcome.OK:
            self.completed += 1
            self.latencies_s.append(response.latency_s)
        elif response.outcome is Outcome.REJECTED:
            self.rejected += 1
        elif response.outcome is Outcome.SHED:
            self.shed += 1
        elif response.outcome is Outcome.TIMED_OUT:
            self.timed_out += 1
        elif response.outcome is Outcome.APPROXIMATED:
            self.approximated += 1
            self.latencies_s.append(response.latency_s)

    @property
    def accepted(self) -> int:
        """Alias the conservation property reads: OK completions."""
        return self.completed

    @property
    def answered(self) -> int:
        """Responses that carried an answer: exact or estimated."""
        return self.completed + self.approximated

    def conserved(self) -> bool:
        """Every submitted request got exactly one outcome."""
        return (
            self.completed
            + self.rejected
            + self.shed
            + self.timed_out
            + self.approximated
            == self.submitted
        )
