"""Multi-tenant query service over the simulated MithriLog stack.

The paper evaluates MithriLog as a *shared* accelerator: Section 4's
concurrent-query mode exists because many analysts (or many tenants)
query the same log store at once. This package is the service layer
that makes sharing safe and fast:

- :mod:`repro.service.request` — the vocabulary: :class:`Request`,
  :class:`Response`, the five-valued :class:`Outcome` (including
  ``APPROXIMATED`` sampled-scan answers), per-tenant
  :class:`TenantConfig` knobs and :class:`TenantStats` accounting;
- :mod:`repro.service.admission` — bounded per-tenant queues, token-
  bucket rate limits, absolute quotas, and priority-aware overload
  shedding (:class:`AdmissionController`);
- :mod:`repro.service.qos` — weighted-fair drain packed into shared
  accelerator passes by compile probe (:class:`QoSScheduler`);
- :mod:`repro.service.service` — the :class:`QueryService` event loop on
  the simulated clock, plus :class:`ServiceReport`;
- :mod:`repro.service.workload` — skewed tenant mixes, open-loop Poisson
  arrivals and closed-loop client populations, and the offered-load
  sweep helpers ``bench_service.py`` and ``repro loadgen`` share.

Everything runs on simulated time with seeded randomness only in
workload *generation* — a run is bit-for-bit deterministic for a fixed
input and invariant to the host worker count.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.hints import TemplateHintProvider, resolve_priority
from repro.service.qos import Batch, QoSScheduler
from repro.service.request import (
    Outcome,
    Request,
    Response,
    TenantConfig,
    TenantStats,
)
from repro.service.service import QueryService, ServiceReport
from repro.service.workload import (
    ClosedLoopSource,
    SweepPoint,
    WorkloadSource,
    estimate_capacity,
    make_tenants,
    open_loop_requests,
    query_pool,
    run_sweep,
    zipf_shares,
)

__all__ = [
    "AdmissionController",
    "Batch",
    "ClosedLoopSource",
    "Outcome",
    "QoSScheduler",
    "QueryService",
    "Request",
    "Response",
    "ServiceReport",
    "SweepPoint",
    "TemplateHintProvider",
    "TenantConfig",
    "TenantStats",
    "TokenBucket",
    "WorkloadSource",
    "estimate_capacity",
    "make_tenants",
    "open_loop_requests",
    "query_pool",
    "resolve_priority",
    "run_sweep",
    "zipf_shares",
]
