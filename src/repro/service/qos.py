"""QoS scheduling: weighted-fair drain packed into shared accelerator passes.

Two goals pull against each other in a multi-tenant front end:

- **fairness** — a heavy tenant must not starve light ones, and paid
  weights must mean something;
- **batching** — the accelerator is fastest when a pass carries many
  queries (Section 4's concurrent-query mode: one decompress+tokenize
  stream feeds up to eight compiled queries), so serving one request per
  pass throws away most of the hardware.

The scheduler does both: requests are *chosen* by start-time weighted
fair queueing (each tenant accrues virtual work ``1/weight`` per served
request; the tenant with the least virtual work goes next), and the
chosen requests are *packed* into one accelerator pass with the same
compile-probe the single-tenant :class:`repro.system.scheduler
.QueryScheduler` uses — a query joins the pass only if the combined
program still compiles within the flag-pair and cuckoo-placement
budgets. Batching therefore survives the multi-tenant boundary: a pass
routinely carries queries from several tenants at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.hashfilter import compile_queries
from repro.core.query import Query
from repro.errors import CapacityError, PlacementError, QueryError
from repro.service.admission import AdmissionController, QueuedRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.hints import TemplateHintProvider


@dataclass
class Batch:
    """One planned accelerator pass: the requests riding it together."""

    members: list[QueuedRequest] = field(default_factory=list)

    @property
    def queries(self) -> list[Query]:
        return [m.request.query for m in self.members]

    @property
    def tenants(self) -> list[str]:
        return [m.request.tenant for m in self.members]

    @property
    def approx(self) -> bool:
        """Is this a sampled pass? (All riders agree — see quarantine.)"""
        return bool(self.members) and self.members[0].approx

    @property
    def sample_fraction(self) -> Optional[float]:
        """The sampled pass's page fraction (None for exact passes)."""
        if not self.approx:
            return None
        return self.members[0].request.sample_fraction

    def __len__(self) -> int:
        return len(self.members)


class QoSScheduler:
    """Drains admission queues fairly into compile-probe-packed batches."""

    def __init__(
        self,
        cuckoo_params,
        seed: int = 0,
        max_batch: int = 8,
        hints: Optional["TemplateHintProvider"] = None,
    ) -> None:
        if max_batch <= 0:
            raise QueryError("max_batch must be positive")
        self.cuckoo_params = cuckoo_params
        self.seed = seed
        self.max_batch = max_batch
        #: template hints: when set, slow-template and fast-template
        #: queries never share a pass (the pass is paced by its most
        #: expensive rider, so one broad template taxes every rider)
        self.hints = hints
        #: virtual work per tenant; min-heap semantics via explicit argmin
        self.virtual_work: dict[str, float] = {}

    def fits(self, queries: Sequence[Query]) -> bool:
        """The compile probe: does the combined program still place?"""
        try:
            compile_queries(queries, params=self.cuckoo_params, seed=self.seed)
        except (CapacityError, PlacementError):
            return False
        return True

    def _next_tenant(
        self, admission: AdmissionController, skip: set
    ) -> str | None:
        """The non-empty tenant with the least weighted virtual work."""
        best: str | None = None
        best_key: tuple[float, str] | None = None
        for name, state in admission.tenants.items():
            if name in skip or not state.queue:
                continue
            key = (self.virtual_work.get(name, 0.0), name)
            if best_key is None or key < best_key:
                best, best_key = name, key
        return best

    def next_batch(self, admission: AdmissionController) -> Batch:
        """Plan the next accelerator pass from the queued work.

        Repeatedly picks the fairest tenant and tries to add its head
        request to the pass. A head that no longer fits parks that
        tenant for this pass (its turn is not lost — virtual work only
        accrues for served requests). A request that cannot compile even
        alone still ships as a batch of one: the engine falls back to
        software evaluation for it, exactly as the single-tenant
        scheduler does.
        """
        batch = Batch()
        skip: set = set()
        while len(batch) < self.max_batch:
            tenant = self._next_tenant(admission, skip)
            if tenant is None:
                break
            head = admission.head(tenant)
            assert head is not None  # _next_tenant only returns non-empty
            if len(batch) > 0 and head.sample_key != batch.members[0].sample_key:
                # mode quarantine: sampled and exact scans read different
                # page sets, and sampled riders must share one fraction —
                # a mixed pass would be unexecutable as a single scan
                skip.add(tenant)
                continue
            if (
                len(batch) > 0
                and self.hints is not None
                and self.hints.is_slow(head.request.query)
                != self.hints.is_slow(batch.members[0].request.query)
            ):
                # quarantine: a slow template would pace the whole pass
                skip.add(tenant)
                continue
            candidate = batch.queries + [head.request.query]
            if len(batch) > 0 and not self.fits(candidate):
                skip.add(tenant)
                continue
            admission.take(tenant)
            batch.members.append(head)
            state = admission.tenants[tenant]
            self.virtual_work[tenant] = self.virtual_work.get(tenant, 0.0) + (
                1.0 / state.config.weight
            )
        return batch

    def reset(self) -> None:
        """Forget accrued virtual work (a fresh fairness epoch)."""
        self.virtual_work.clear()
