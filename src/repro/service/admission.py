"""Admission control: bounded queues, token buckets, quotas, shedding.

Query workloads against shared log platforms are skewed and bursty (see
*Query Log Compression for Workload Analytics* in PAPERS.md): one noisy
tenant can monopolise an accelerator that a dozen quiet ones rely on.
The admission layer is the first line of defence, and it is deliberately
*explicit*: every refused request gets a :class:`~repro.service.request
.Response` with a machine-readable reason instead of an unbounded queue
or a hung caller.

Order of checks at the door (cheapest veto first):

1. **quota** — the tenant's absolute per-run budget is spent;
2. **rate limit** — the tenant's token bucket is empty (buckets refill
   on the simulated clock, so runs are deterministic);
3. **queue bound** — the tenant's admission queue is full;
4. **backlog shedding** — the *global* backlog has hit the overload
   line: the lowest-priority request in the building (the newcomer or a
   queued victim) is shed so higher-priority latency stays bounded.

Requests that opted into the approximate admission class (a
``sample_fraction``) get one reprieve on the shedding path: instead of
being dropped they are *degraded* — marked to run as a sampled scan
that costs a fraction of an accelerator pass and answers with an
estimate (outcome ``APPROXIMATED``). A degraded request that comes up
for shedding a second time is genuinely shed, so the backlog bound
still bites.

All state lives on plain objects keyed by simulated time passed in from
the service loop — nothing here reads a wall clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import QueryError
from repro.service.request import Outcome, Request, Response, TenantConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.hints import TemplateHintProvider


class TokenBucket:
    """A deterministic token bucket on simulated time."""

    def __init__(self, rate_per_s: float, capacity: float) -> None:
        self.rate_per_s = rate_per_s
        self.capacity = capacity
        self.tokens = capacity
        self._last_refill_s = 0.0

    def refill(self, now: float) -> None:
        if now <= self._last_refill_s:
            return
        if self.rate_per_s == float("inf"):
            self.tokens = self.capacity
        else:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self._last_refill_s) * self.rate_per_s,
            )
        self._last_refill_s = now

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Refill to ``now`` and spend ``amount`` tokens if available."""
        self.refill(now)
        if self.capacity == float("inf"):
            return True
        if self.tokens + 1e-12 >= amount:  # tolerate float refill drift
            self.tokens -= amount
            return True
        return False


@dataclass
class QueuedRequest:
    """A request waiting in its tenant's admission queue."""

    request: Request
    arrival_s: float  #: rebased absolute simulated arrival
    seq: int  #: global admission order, the deterministic tie-break
    #: overload degraded this request to the approximate class: it will
    #: ride a sampled pass and settle as APPROXIMATED, not OK
    approx: bool = False

    @property
    def deadline_at_s(self) -> Optional[float]:
        if self.request.deadline_s is None:
            return None
        return self.arrival_s + self.request.deadline_s

    @property
    def sample_key(self) -> tuple[bool, Optional[float]]:
        """Pass-compatibility key: sampled and exact work never share an
        accelerator pass, and sampled riders must agree on the fraction."""
        return (self.approx, self.request.sample_fraction if self.approx else None)


@dataclass
class TenantState:
    """One tenant's live admission state."""

    config: TenantConfig
    bucket: TokenBucket
    queue: deque = field(default_factory=deque)  #: of QueuedRequest
    quota_used: int = 0

    @property
    def backlog(self) -> int:
        return len(self.queue)


class AdmissionController:
    """The service's front gate: admit, refuse, or shed — never block.

    ``max_backlog`` bounds the *total* queued work across tenants; when
    an arrival would push past it, the lowest-priority request in the
    system is shed (the newcomer itself when nothing queued is lower).
    Ties shed the youngest, so long-waiting work is not starved by
    equally-unimportant new arrivals.
    """

    def __init__(
        self,
        tenants: list[TenantConfig],
        max_backlog: Optional[int] = None,
        hints: Optional["TemplateHintProvider"] = None,
        approx_on_overload: bool = True,
    ) -> None:
        if not tenants:
            raise QueryError("admission control needs at least one tenant")
        if max_backlog is not None and max_backlog <= 0:
            raise QueryError("max_backlog must be positive when given")
        #: template-aware priority hints, consulted only on the overload
        #: (shedding) path — normal admission never reads them
        self.hints = hints
        #: honour the approximate admission class on the shedding path
        #: (the service turns this off when its backend cannot sample)
        self.approx_on_overload = approx_on_overload
        #: sheds converted into sampled answers (metrics/report feed)
        self.degraded_to_sample = 0
        self.tenants: dict[str, TenantState] = {}
        for config in tenants:
            if config.name in self.tenants:
                raise QueryError(f"duplicate tenant {config.name!r}")
            self.tenants[config.name] = TenantState(
                config=config,
                bucket=TokenBucket(config.rate_per_s, config.bucket_capacity),
            )
        self.max_backlog = max_backlog
        self._seq = 0

    # -- queries over the queues ----------------------------------------

    @property
    def total_backlog(self) -> int:
        return sum(t.backlog for t in self.tenants.values())

    def backlog_of(self, tenant: str) -> int:
        return self.tenants[tenant].backlog

    def pending(self) -> list[QueuedRequest]:
        """Every queued request, in admission order."""
        items = [q for t in self.tenants.values() for q in t.queue]
        items.sort(key=lambda q: q.seq)
        return items

    # -- the gate ---------------------------------------------------------

    def offer(
        self, request: Request, now: float, arrival_s: float
    ) -> tuple[Optional[Response], list[Response]]:
        """Present one request at the gate.

        Returns ``(refusal, shed)``: ``refusal`` is the newcomer's
        terminal response when it was refused or shed at the door
        (``None`` means it is now queued), and ``shed`` lists responses
        for any *queued* victims evicted to make room. Exactly one
        terminal response per request, eventually — the service loop
        relies on it.
        """
        state = self.tenants.get(request.tenant)
        if state is None:
            return (
                self._refuse(request, now, arrival_s, "unknown_tenant"),
                [],
            )
        config = state.config
        if (
            config.quota_queries is not None
            and state.quota_used >= config.quota_queries
        ):
            return self._refuse(request, now, arrival_s, "quota"), []
        if not state.bucket.try_take(now):
            return self._refuse(request, now, arrival_s, "rate_limit"), []
        # the bucket token is spent even if a later check refuses: the
        # tenant *used* its rate allowance by knocking
        if state.backlog >= config.queue_limit:
            return self._refuse(request, now, arrival_s, "queue_full"), []
        state.quota_used += 1
        shed: list[Response] = []
        if (
            self.max_backlog is not None
            and self.total_backlog >= self.max_backlog
        ):
            victim = self._lowest_priority_queued()
            if victim is None or self._priority(
                victim.request
            ) >= self._priority(request):
                # the newcomer is the lowest-priority request in the
                # building: degrade it if it opted in, else shed it
                if self._can_degrade(request):
                    self.degraded_to_sample += 1
                    self._seq += 1
                    state.queue.append(
                        QueuedRequest(
                            request=request,
                            arrival_s=arrival_s,
                            seq=self._seq,
                            approx=True,
                        )
                    )
                    return None, []
                self._note_hinted_shed(request)
                return (
                    Response(
                        request=request,
                        outcome=Outcome.SHED,
                        reason="overload",
                        completed_at_s=now,
                    ),
                    [],
                )
            if self._can_degrade(victim.request) and not victim.approx:
                # one reprieve: the victim stays queued but will ride a
                # sampled pass; picked again, it is genuinely shed
                victim.approx = True
                self.degraded_to_sample += 1
            else:
                self._evict(victim)
                self._note_hinted_shed(victim.request)
                shed.append(
                    Response(
                        request=victim.request,
                        outcome=Outcome.SHED,
                        reason="overload",
                        queue_time_s=now - victim.arrival_s,
                        completed_at_s=now,
                    )
                )
        self._seq += 1
        state.queue.append(
            QueuedRequest(request=request, arrival_s=arrival_s, seq=self._seq)
        )
        return None, shed

    def expire_deadlines(self, now: float) -> list[Response]:
        """Cancel every queued request whose deadline has passed."""
        expired: list[Response] = []
        for state in self.tenants.values():
            keep = deque()
            for queued in state.queue:
                deadline = queued.deadline_at_s
                if deadline is not None and deadline < now:
                    expired.append(
                        Response(
                            request=queued.request,
                            outcome=Outcome.TIMED_OUT,
                            reason="deadline",
                            queue_time_s=now - queued.arrival_s,
                            completed_at_s=now,
                        )
                    )
                else:
                    keep.append(queued)
            state.queue = keep
        expired.sort(key=lambda r: r.request.arrival_s)
        return expired

    def take(self, tenant: str) -> QueuedRequest:
        """Pop the head of one tenant's queue (scheduler's accessor)."""
        return self.tenants[tenant].queue.popleft()

    def head(self, tenant: str) -> Optional[QueuedRequest]:
        state = self.tenants[tenant]
        return state.queue[0] if state.queue else None

    # -- internals --------------------------------------------------------

    def _refuse(
        self, request: Request, now: float, arrival_s: float, reason: str
    ) -> Response:
        del arrival_s  # refusals are instantaneous; no queue time accrues
        return Response(
            request=request,
            outcome=Outcome.REJECTED,
            reason=reason,
            completed_at_s=now,
        )

    def _can_degrade(self, request: Request) -> bool:
        """May this request leave with an estimate instead of a shed?"""
        return self.approx_on_overload and request.sample_fraction is not None

    def _priority(self, request: Request) -> int:
        """The priority the overload path compares: hinted when active."""
        if self.hints is None:
            return request.priority
        return self.hints.effective_priority(request)

    def _note_hinted_shed(self, request: Request) -> None:
        """Count a shed that the hint demotion (not the declared
        priority alone) steered toward a slow template."""
        if self.hints is not None and self.hints.is_slow(request.query):
            self.hints.note_demotion()

    def _lowest_priority_queued(self) -> Optional[QueuedRequest]:
        """The shedding victim: lowest (hinted) priority, then youngest."""
        victim: Optional[QueuedRequest] = None
        victim_key: Optional[tuple[int, int]] = None
        for state in self.tenants.values():
            for queued in state.queue:
                key = (self._priority(queued.request), -queued.seq)
                if victim_key is None or key < victim_key:
                    victim, victim_key = queued, key
        return victim

    def _evict(self, victim: QueuedRequest) -> None:
        state = self.tenants[victim.request.tenant]
        state.queue = deque(q for q in state.queue if q.seq != victim.seq)
