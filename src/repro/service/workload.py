"""Workload generation: skewed tenant mixes, open- and closed-loop load.

Real query workloads against shared log platforms are *skewed* (a few
tenants issue most queries) and *bursty* (arrivals cluster). This module
builds such traffic deterministically from a seed:

- :func:`make_tenants` — N tenants with Zipf-skewed traffic shares and
  matching QoS weights;
- :func:`query_pool` — template queries extracted from a corpus via
  FT-tree + :func:`repro.templates.querygen.build_workload`, so the
  service replays the same machine-generated query families the paper's
  evaluation uses;
- :func:`open_loop_requests` — Poisson arrivals at a fixed offered rate,
  split across tenants by their shares (open loop: the generator does
  not care whether the service keeps up — exactly the regime where
  admission control earns its keep);
- :class:`ClosedLoopSource` — a fixed population of per-tenant clients,
  each submitting, waiting for its response, thinking, submitting again
  (closed loop: offered load self-limits to the service's capacity).

Helpers at the bottom (:func:`estimate_capacity`, :func:`run_sweep`)
drive a :class:`~repro.service.service.QueryService` across offered-load
multiples and emit the latency/goodput records ``bench_service.py`` and
``repro loadgen`` both consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Protocol, Sequence

from repro.core.query import Query
from repro.errors import QueryError
from repro.service.request import Request, Response, TenantConfig
from repro.templates.fttree import FTTree, FTTreeParams
from repro.templates.querygen import build_workload


class WorkloadSource(Protocol):
    """Closed-loop feedback: the service calls back on every completion."""

    def initial_requests(self) -> Iterable[Request]:
        """Requests in flight when the run starts."""
        ...  # pragma: no cover - protocol

    def on_complete(self, response: Response, now_s: float) -> Iterable[Request]:
        """React to a completion; return follow-up requests (offsets)."""
        ...  # pragma: no cover - protocol


def zipf_shares(n: int, skew: float = 1.2) -> list[float]:
    """Traffic shares ``1/rank^skew``, normalised to sum to one."""
    if n <= 0:
        raise QueryError("need at least one tenant")
    raw = [1.0 / (rank**skew) for rank in range(1, n + 1)]
    total = sum(raw)
    return [r / total for r in raw]


def make_tenants(
    n: int,
    skew: float = 1.2,
    queue_limit: int = 64,
    rate_per_s: float = float("inf"),
    quota_queries: Optional[int] = None,
) -> list[TenantConfig]:
    """N tenants, Zipf-skewed: heavier tenants get larger QoS weights.

    Weights track shares so the fair scheduler honours the paid tiers;
    the admission knobs (queue bound, rate, quota) apply uniformly — the
    per-tenant constructor is there when a test wants asymmetry.
    """
    shares = zipf_shares(n, skew)
    return [
        TenantConfig(
            name=f"tenant{i}",
            weight=share * n,  # mean weight 1.0, skewed like traffic
            queue_limit=queue_limit,
            rate_per_s=rate_per_s,
            quota_queries=quota_queries,
        )
        for i, share in enumerate(shares)
    ]


def query_pool(
    lines: Sequence[bytes],
    max_queries: int = 32,
    seed: int = 2021,
    num_pairs: int = 8,
) -> list[Query]:
    """Template queries over a corpus, via FT-tree extraction.

    The pool mixes single-template queries with a few OR-pairs — the
    Section 7.1 construction — so packed batches exercise both small and
    wider programs.
    """
    if not lines:
        raise QueryError("query_pool needs a corpus")
    tree = FTTree.from_lines(
        list(lines),
        FTTreeParams(max_depth=10, prune_threshold=32, max_doc_frequency=0.9),
    )
    workload = build_workload(
        tree, num_pairs=num_pairs, num_eights=0, seed=seed
    )
    pool = list(workload.singles[: max(1, max_queries - num_pairs)])
    pool.extend(workload.pairs)
    return pool[:max_queries]


def _pick_tenant(rng: random.Random, tenants: Sequence[TenantConfig],
                 shares: Sequence[float]) -> str:
    roll = rng.random()
    acc = 0.0
    for config, share in zip(tenants, shares):
        acc += share
        if roll <= acc:
            return config.name
    return tenants[-1].name


def open_loop_requests(
    pool: Sequence[Query],
    tenants: Sequence[TenantConfig],
    offered_qps: float,
    duration_s: float,
    seed: int = 0,
    skew: float = 1.2,
    deadline_s: Optional[float] = None,
    priorities: Sequence[int] = (0, 0, 1, 2),
    sample_fraction: Optional[float] = None,
) -> list[Request]:
    """Poisson arrivals at ``offered_qps`` for ``duration_s`` seconds.

    Tenant choice is Zipf-share weighted (same ``skew`` convention as
    :func:`make_tenants`); priorities are drawn uniformly from
    ``priorities`` (the default skews low — most traffic is sheddable).
    ``sample_fraction`` opts every request into the approximate
    admission class: under overload the service degrades them to a
    sampled scan at that page fraction instead of shedding them.
    Deterministic in ``seed``.
    """
    if offered_qps <= 0:
        raise QueryError("offered_qps must be positive")
    if duration_s <= 0:
        raise QueryError("duration_s must be positive")
    if not pool:
        raise QueryError("open_loop_requests needs a query pool")
    rng = random.Random(seed)
    shares = zipf_shares(len(tenants), skew)
    requests: list[Request] = []
    t = 0.0
    while True:
        t += rng.expovariate(offered_qps)
        if t >= duration_s:
            break
        requests.append(
            Request(
                tenant=_pick_tenant(rng, tenants, shares),
                query=rng.choice(list(pool)),
                priority=rng.choice(list(priorities)),
                deadline_s=deadline_s,
                arrival_s=t,
                sample_fraction=sample_fraction,
            )
        )
    return requests


class ClosedLoopSource:
    """A fixed client population: submit → wait → think → submit again.

    Each tenant runs ``clients`` concurrent clients. A client issues its
    next request ``think_time_s`` after its previous response lands (any
    outcome — a rejected client retries after thinking, like a human
    hitting refresh). The source stops issuing once ``max_requests``
    total have been submitted, so runs terminate.
    """

    def __init__(
        self,
        pool: Sequence[Query],
        tenants: Sequence[TenantConfig],
        clients: int = 2,
        think_time_s: float = 0.005,
        max_requests: int = 200,
        seed: int = 0,
        deadline_s: Optional[float] = None,
        sample_fraction: Optional[float] = None,
    ) -> None:
        if clients <= 0:
            raise QueryError("clients must be positive")
        if think_time_s < 0:
            raise QueryError("think_time_s cannot be negative")
        if max_requests <= 0:
            raise QueryError("max_requests must be positive")
        self.pool = list(pool)
        self.tenants = list(tenants)
        self.clients = clients
        self.think_time_s = think_time_s
        self.max_requests = max_requests
        self.deadline_s = deadline_s
        self.sample_fraction = sample_fraction
        self._rng = random.Random(seed)
        self.issued = 0

    def _make(self, tenant: str, arrival_s: float) -> Request:
        self.issued += 1
        return Request(
            tenant=tenant,
            query=self._rng.choice(self.pool),
            priority=self._rng.choice((0, 1, 2)),
            deadline_s=self.deadline_s,
            arrival_s=arrival_s,
            sample_fraction=self.sample_fraction,
        )

    def initial_requests(self) -> list[Request]:
        requests = []
        for config in self.tenants:
            for client in range(self.clients):
                if self.issued >= self.max_requests:
                    return requests
                # stagger starts so the first batch is not one burst
                requests.append(
                    self._make(config.name, client * self.think_time_s)
                )
        return requests

    def on_complete(self, response: Response, now_s: float) -> list[Request]:
        if self.issued >= self.max_requests:
            return []
        return [
            self._make(
                response.request.tenant, now_s + self.think_time_s
            )
        ]


# ---------------------------------------------------------------------------
# Load sweeps (shared by bench_service.py and `repro loadgen`)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One offered-load level's service-quality numbers."""

    load_multiple: float
    offered_qps: float
    goodput_qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    shed_rate: float
    passes: int
    submitted: int
    approximated: int = 0  #: responses answered as sampled estimates

    def record(self) -> dict:
        """A trajectory-file record (``repro watch-perf`` compatible)."""
        return {
            "bench": "service",
            "config": f"load-x{self.load_multiple:g}",
            "offered_qps": round(self.offered_qps, 2),
            "goodput_qps": round(self.goodput_qps, 2),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "shed_rate": round(self.shed_rate, 4),
            "passes": self.passes,
            "submitted": self.submitted,
            "approximated": self.approximated,
        }


def estimate_capacity(
    service_factory: Callable[[], "object"],
    pool: Sequence[Query],
    tenants: Sequence[TenantConfig],
    probe_requests: int = 24,
    seed: int = 0,
) -> float:
    """Measured saturation throughput (queries/simulated-second).

    Runs a short closed-loop burst (zero think time) against a fresh
    service and reads the goodput: with full queues and batching this is
    what the accelerator actually sustains — the anchor the sweep's
    offered-load multiples scale from.
    """
    service = service_factory()
    source = ClosedLoopSource(
        pool,
        tenants,
        clients=4,
        think_time_s=0.0,
        max_requests=probe_requests,
        seed=seed,
    )
    report = service.run(source=source)
    if report.goodput_qps <= 0:
        raise QueryError("capacity probe served nothing")
    return report.goodput_qps


def run_sweep(
    service_factory: Callable[[], "object"],
    pool: Sequence[Query],
    tenants: Sequence[TenantConfig],
    capacity_qps: float,
    load_multiples: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    duration_s: float = 0.5,
    deadline_s: Optional[float] = None,
    seed: int = 0,
    workers: int = 1,
    journal: Optional[object] = None,
    monitor: Optional[object] = None,
    sample_fraction: Optional[float] = None,
) -> list[SweepPoint]:
    """Offered-load sweep: one fresh service per level, open-loop traffic.

    Each level offers ``multiple x capacity_qps`` for ``duration_s``
    simulated seconds and records the latency percentiles of completed
    work, the goodput, and the loss (shed+rejected+timed-out) rate —
    the curve the acceptance gate reads: p99 stays bounded past
    saturation *because* shedding engages.

    Pass a :class:`repro.obs.journal.QueryJournal` as ``journal`` to
    capture every request across the sweep; each load level opens its
    own journal window (``load-x<multiple>``) so the levels can be
    mined and diffed independently afterwards. Pass an
    :class:`repro.obs.slo.SLOMonitor` as ``monitor`` to evaluate SLO
    burn rates live across every level of the sweep.

    ``sample_fraction`` opts the generated traffic into the approximate
    admission class (see :func:`open_loop_requests`); past saturation
    the service then answers with sampled estimates instead of
    shedding, which the per-point ``approximated`` tally records.
    """
    points: list[SweepPoint] = []
    time_base = 0.0
    for multiple in load_multiples:
        offered = capacity_qps * multiple
        requests = open_loop_requests(
            pool,
            tenants,
            offered_qps=offered,
            duration_s=duration_s,
            seed=seed,
            deadline_s=deadline_s,
            sample_fraction=sample_fraction,
        )
        service = service_factory()
        if journal is not None:
            journal.begin_window(f"load-x{multiple:g}")
            service.journal = journal
        if monitor is not None:
            service.monitor = monitor
            # each level gets a fresh service (and clock); rebase onto
            # the previous level's end so the monitor's simulated
            # timeline stays monotone across the whole sweep
            if time_base > service.clock.now:
                service.clock.advance_to(time_base)
        report = service.run(requests, workers=workers)
        if monitor is not None:
            time_base = service.clock.now
        points.append(
            SweepPoint(
                load_multiple=multiple,
                offered_qps=offered,
                goodput_qps=report.goodput_qps,
                p50_ms=report.latency_percentile_s(50) * 1e3,
                p95_ms=report.latency_percentile_s(95) * 1e3,
                p99_ms=report.latency_percentile_s(99) * 1e3,
                shed_rate=report.shed_rate,
                passes=report.passes,
                submitted=report.submitted,
                approximated=report.approximated,
            )
        )
    return points
