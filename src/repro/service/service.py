"""The multi-tenant query service: front door, event loop, reporting.

:class:`QueryService` turns a :class:`repro.system.MithriLogSystem` (or
a :class:`repro.system.cluster.MithriLogCluster`) into a simulated
shared log-analytics service. Callers describe *traffic* — a list of
:class:`~repro.service.request.Request` objects, or a closed-loop
:class:`~repro.service.workload.WorkloadSource` — and the service runs
an event loop on the **simulated clock**:

1. advance to the next arrival when idle;
2. pass arrivals through :class:`~repro.service.admission
   .AdmissionController` (quota → rate limit → queue bound → shedding);
3. cancel queued requests whose deadlines expired while earlier passes
   ran;
4. ask :class:`~repro.service.qos.QoSScheduler` for the next weighted-
   fair, compile-probe-packed batch and run it as **one** accelerator
   pass via ``system.query(*queries)``.

Every step is driven by simulated time and seeded choices, so a run is
deterministic for a fixed input and invariant to ``workers`` (the scan
executor's stats are worker-count-invariant by construction). Every
submitted request receives exactly one response.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.errors import QueryError, StorageError
from repro.obs.metrics import get_registry
from repro.obs.tracing import SpanTracer
from repro.service.admission import AdmissionController
from repro.service.request import (
    Outcome,
    Request,
    Response,
    TenantConfig,
    TenantStats,
    coerce_query,
)
from repro.service.qos import Batch, QoSScheduler
from repro.sim.clock import SimClock
from repro.system.cluster import MithriLogCluster
from repro.system.mithrilog import MithriLogSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injectors import ServiceFaultInjector
    from repro.obs.journal import QueryJournal
    from repro.obs.slo import SLOMonitor
    from repro.service.hints import TemplateHintProvider
    from repro.service.workload import WorkloadSource

#: Histogram buckets for batch sizes (queries per accelerator pass).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, float("inf"))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass
class ServiceReport:
    """What one service run did, with the numbers a dashboard wants."""

    responses: list[Response]
    tenants: dict[str, TenantStats]
    duration_s: float  #: simulated time the run spanned
    passes: int  #: accelerator passes executed
    queries_served: int  #: answered responses (OK + approximated)

    @property
    def submitted(self) -> int:
        return len(self.responses)

    @property
    def ok_latencies_s(self) -> list[float]:
        return [r.latency_s for r in self.responses if r.answered]

    def latency_percentile_s(self, q: float) -> float:
        return percentile(self.ok_latencies_s, q)

    @property
    def approximated(self) -> int:
        """Responses answered with a sampled-scan estimate."""
        return sum(1 for r in self.responses if r.outcome is Outcome.APPROXIMATED)

    @property
    def goodput_qps(self) -> float:
        """Answered completions (exact or estimated) per simulated second."""
        if self.duration_s <= 0:
            return 0.0
        return self.queries_served / self.duration_s

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted work refused, shed, or timed out.

        Approximated responses are *answers* (degraded, not lost), so
        they do not count toward this rate.
        """
        if not self.responses:
            return 0.0
        lost = sum(1 for r in self.responses if not r.answered)
        return lost / len(self.responses)

    def outcome_counts(self) -> dict[str, int]:
        counts = {outcome.value: 0 for outcome in Outcome}
        for response in self.responses:
            counts[response.outcome.value] += 1
        return counts

    def conserved(self) -> bool:
        """Intake equals the five outcome tallies, for every tenant."""
        return all(stats.conserved() for stats in self.tenants.values())


class QueryService:
    """A simulated multi-tenant front door over one MithriLog backend."""

    def __init__(
        self,
        backend: Union[MithriLogSystem, MithriLogCluster],
        tenants: Sequence[TenantConfig],
        max_batch: int = 8,
        max_backlog: Optional[int] = None,
        use_index: bool = True,
        fault_injector: Optional["ServiceFaultInjector"] = None,
        tracer: Optional[SpanTracer] = None,
        journal: Optional["QueryJournal"] = None,
        hints: Optional["TemplateHintProvider"] = None,
        monitor: Optional["SLOMonitor"] = None,
        approx_on_overload: Optional[bool] = None,
    ) -> None:
        self.backend = backend
        self.is_cluster = isinstance(backend, MithriLogCluster)
        reference = backend.shards[0] if self.is_cluster else backend
        #: Cluster backends keep their own per-shard clocks; the service
        #: then owns the timeline. A single system shares its clock so
        #: service spans line up with ingest/query spans on one trace.
        self.clock: SimClock = (
            SimClock() if self.is_cluster else reference.clock
        )
        #: Sampled (approximate) passes need the backend's sampled scan
        #: path; cluster backends fan out per shard and do not offer it,
        #: so overload there falls back to shedding as before.
        if approx_on_overload is None:
            approx_on_overload = not self.is_cluster
        if approx_on_overload and self.is_cluster:
            raise QueryError(
                "approx_on_overload requires a single-system backend"
            )
        self.admission = AdmissionController(
            list(tenants), max_backlog=max_backlog, hints=hints,
            approx_on_overload=approx_on_overload,
        )
        self.scheduler = QoSScheduler(
            reference.params.cuckoo,
            seed=reference.engine.seed,
            max_batch=max_batch,
            hints=hints,
        )
        #: the seed sampled passes key page selection on — the engine
        #: seed, so selection is fixed per deployment, not per pass
        self._sample_seed = reference.engine.seed
        self.use_index = use_index
        self.fault_injector = fault_injector
        self.tracer = tracer
        #: append-only query journal; every settled response lands here
        self.journal = journal
        self.hints = hints
        #: live SLO monitor; every settled response is observed at its
        #: simulated completion time (burn-rate alerting, flight recorder)
        self.monitor = monitor
        self.passes = 0
        registry = get_registry()
        if registry is not None:
            self._m_requests = registry.counter(
                "mithrilog_service_requests_total",
                "Service requests by tenant and outcome",
                labelnames=("tenant", "outcome"),
            )
            self._m_queue_depth = registry.gauge(
                "mithrilog_service_queue_depth",
                "Admission queue depth per tenant",
                labelnames=("tenant",),
            )
            self._m_backlog = registry.gauge(
                "mithrilog_service_backlog",
                "Total queued requests across tenants",
            )
            self._m_latency = registry.histogram(
                "mithrilog_service_latency_seconds",
                "Per-tenant end-to-end simulated latency (OK only)",
                labelnames=("tenant",),
            )
            self._m_passes = registry.counter(
                "mithrilog_service_passes_total",
                "Accelerator passes the service scheduled",
            )
            self._m_batch = registry.histogram(
                "mithrilog_service_batch_size",
                "Queries packed per accelerator pass",
                buckets=BATCH_BUCKETS,
            )
            self._m_degraded_to_sample = registry.gauge(
                "mithrilog_service_degraded_to_sample",
                "Requests degraded to the sampled admission class "
                "instead of being shed",
            )
        else:
            self._m_requests = None
            self._m_queue_depth = None
            self._m_backlog = None
            self._m_latency = None
            self._m_passes = None
            self._m_batch = None
            self._m_degraded_to_sample = None

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def run(
        self,
        requests: Sequence[Request] = (),
        source: Optional["WorkloadSource"] = None,
        workers: int = 1,
    ) -> ServiceReport:
        """Serve a whole workload; returns when every request resolved.

        ``requests`` is an open-loop arrival list (``arrival_s`` offsets
        from the start of this run); ``source`` optionally feeds more
        arrivals in reaction to completions (closed-loop load). Both may
        be combined. ``workers`` fans each pass's host-side scan over a
        process pool — outcomes and simulated times are identical at any
        worker count.
        """
        if workers < 1:
            raise QueryError("workers must be at least 1")
        t0 = self.clock.now
        stats: dict[str, TenantStats] = {
            name: TenantStats() for name in self.admission.tenants
        }
        responses: list[Response] = []
        arrivals: list[tuple[float, int, Request]] = []
        seq = 0

        def push(request: Request) -> None:
            nonlocal seq
            request = self._validated(request)
            seq += 1
            heappush(arrivals, (t0 + request.arrival_s, seq, request))

        def settle(response: Response) -> None:
            responses.append(response)
            tenant = response.request.tenant
            if tenant in stats:
                stats[tenant].record(response)
            if self.journal is not None:
                self.journal.observe(response)
            if self.monitor is not None:
                self.monitor.observe_response(response, self.clock.now)
            if self._m_requests is not None:
                self._m_requests.inc(
                    tenant=tenant, outcome=response.outcome.value
                )
                if response.answered:
                    self._m_latency.observe(response.latency_s, tenant=tenant)
            if source is not None:
                for follow_up in source.on_complete(response, self.clock.now - t0):
                    push(follow_up)

        for request in requests:
            push(request)
        if source is not None:
            for request in source.initial_requests():
                push(request)

        while arrivals or self.admission.total_backlog:
            if not self.admission.total_backlog:
                self.clock.advance_to(arrivals[0][0])
            # admit everything that has arrived by now
            while arrivals and arrivals[0][0] <= self.clock.now:
                arrival_abs, _, request = heappop(arrivals)
                if request.tenant in stats:
                    stats[request.tenant].note_submitted()
                else:  # unknown tenant: still owed exactly one response
                    stats.setdefault(request.tenant, TenantStats())
                    stats[request.tenant].note_submitted()
                if self.journal is not None:
                    self.journal.note_submitted(request.tenant)
                refusal, shed = self._admit(request, arrival_abs)
                for victim in shed:
                    settle(victim)
                if refusal is not None:
                    settle(refusal)
            self._publish_queue_gauges()
            if not self.admission.total_backlog:
                continue
            for expired in self.admission.expire_deadlines(self.clock.now):
                settle(expired)
            batch = self.scheduler.next_batch(self.admission)
            if len(batch) == 0:
                continue
            for response in self._execute(batch, workers):
                settle(response)
            self._publish_queue_gauges()

        if self.monitor is not None:
            # force a final evaluation so alerts straddling the last
            # settled event still advance (e.g. firing -> resolved)
            self.monitor.evaluate(self.clock.now)
        return ServiceReport(
            responses=responses,
            tenants=stats,
            duration_s=self.clock.now - t0,
            passes=self.passes,
            queries_served=sum(s.answered for s in stats.values()),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _validated(self, request: Request) -> Request:
        """Front-door validation: compile the query form once, here."""
        query = coerce_query(request.query)
        if query is request.query:
            return request
        return Request(
            tenant=request.tenant,
            query=query,
            priority=request.priority,
            deadline_s=request.deadline_s,
            arrival_s=request.arrival_s,
            sample_fraction=request.sample_fraction,
        )

    def _admit(
        self, request: Request, arrival_abs: float
    ) -> tuple[Optional[Response], list[Response]]:
        if self.fault_injector is not None and self.fault_injector.on_admit(
            request.tenant
        ):
            return (
                Response(
                    request=request,
                    outcome=Outcome.REJECTED,
                    reason="compile_fault",
                    completed_at_s=self.clock.now,
                ),
                [],
            )
        return self.admission.offer(request, self.clock.now, arrival_abs)

    def _execute(self, batch: Batch, workers: int) -> list[Response]:
        """Run one packed batch as a single accelerator pass."""
        start = self.clock.now
        queries = batch.queries
        degraded = False
        bottleneck = ""
        estimates = None
        try:
            if self.is_cluster:
                outcome = self.backend.query(
                    *queries, use_index=self.use_index, workers=workers
                )
                counts = outcome.per_query_counts
                elapsed = outcome.elapsed_s
                degraded = outcome.degraded
                # the pass is paced by its slowest shard; that shard's
                # bottleneck stage is the pass's bottleneck
                if outcome.per_shard:
                    slowest = max(
                        outcome.per_shard, key=lambda o: o.stats.elapsed_s
                    )
                    bottleneck = slowest.stats.bottleneck
                self.clock.advance(elapsed)
            elif batch.approx:
                # a degraded batch: one sampled pass over a seeded
                # fraction of the candidate pages, answers as estimates
                result = self.backend.query(
                    *queries, use_index=self.use_index, workers=workers,
                    sample_fraction=batch.sample_fraction,
                    sample_seed=self._sample_seed,
                )
                counts = result.per_query_counts
                elapsed = result.stats.elapsed_s  # clock already advanced
                bottleneck = result.stats.bottleneck
                estimates = result.estimates
            else:
                result = self.backend.query(
                    *queries, use_index=self.use_index, workers=workers
                )
                counts = result.per_query_counts
                elapsed = result.stats.elapsed_s  # clock already advanced
                bottleneck = result.stats.bottleneck
        except StorageError as exc:
            # a single system has no healthy-shard fallback: the pass
            # failed outright — its riders are shed with the cause, the
            # availability-loss outcome, never a silent retry-forever
            return [
                Response(
                    request=member.request,
                    outcome=Outcome.SHED,
                    reason=f"storage:{type(exc).__name__}",
                    queue_time_s=start - member.arrival_s,
                    completed_at_s=self.clock.now,
                    batch_size=len(batch),
                )
                for member in batch.members
            ]
        if self.fault_injector is not None:
            multiplier = self.fault_injector.on_pass(len(batch))
            if multiplier > 1.0:
                extra = elapsed * (multiplier - 1.0)
                self.clock.advance(extra)
                elapsed += extra
        self.passes += 1
        if self._m_passes is not None:
            self._m_passes.inc()
            self._m_batch.observe(len(batch))
        if self.tracer is not None:
            self.tracer.record(
                "service_pass",
                start,
                elapsed,
                category="service",
                track="service",
                queries=len(batch),
                tenants=",".join(sorted(set(batch.tenants))),
            )
        return [
            Response(
                request=member.request,
                outcome=Outcome.APPROXIMATED if batch.approx else Outcome.OK,
                queue_time_s=start - member.arrival_s,
                service_time_s=elapsed,
                completed_at_s=self.clock.now,
                matches=counts[i],
                batch_size=len(batch),
                degraded=degraded,
                bottleneck=bottleneck,
                estimate=estimates[i] if estimates is not None else None,
            )
            for i, member in enumerate(batch.members)
        ]

    def _publish_queue_gauges(self) -> None:
        if self._m_queue_depth is None:
            return
        for name, state in self.admission.tenants.items():
            self._m_queue_depth.set(state.backlog, tenant=name)
        self._m_backlog.set(self.admission.total_backlog)
        self._m_degraded_to_sample.set(self.admission.degraded_to_sample)
