"""Template-aware admission hints: the mined workload fed back in.

The loop the workload-observability layer closes: a journal records
what every template *cost*, :mod:`repro.analytics.workload` mines it,
and this module turns the mined profile into live scheduling pressure —
without touching the admission layer's invariants (every request still
gets exactly one response; conservation still holds).

Two mechanisms, both deliberately narrow:

- **overload demotion** — :meth:`TemplateHintProvider.effective_priority`
  lowers the priority of requests whose template the profile marked
  pathologically slow. The admission controller consults it only at the
  *shedding* decision (the overload path), so under normal load slow
  templates are served exactly as before; under overload they become
  the preferred victims, and the accelerator passes that survive are
  the cheap ones.
- **pass quarantine** — :class:`~repro.service.qos.QoSScheduler` keeps
  slow-template and fast-template queries in *separate* passes. A pass
  is paced by its most expensive rider (the scan covers the union's
  candidate pages), so one broad template in a batch taxes every
  fast query sharing it; quarantine confines that cost to the slow
  pass.

Both effects are measured, not asserted: ``benchmarks/bench_workload.py``
runs the same overload traffic with and without hints and gates on a
per-slice goodput/p99 win in the A/B report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import QueryError
from repro.obs.journal import template_fingerprint
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analytics.workload import WorkloadProfile
    from repro.service.request import Request

__all__ = ["TemplateHintProvider", "resolve_priority"]


class TemplateHintProvider:
    """Priority hints keyed by query-template fingerprint.

    ``slow_templates`` holds the fingerprints (:func:`repro.obs.journal
    .template_fingerprint` of the query text) the mined profile flagged;
    ``demotion`` is how many priority levels a flagged request loses at
    the shedding decision. Fingerprinting is memoised per query text, so
    the hot admission path pays one dict lookup per consult.
    """

    def __init__(
        self,
        slow_templates: Iterable[str],
        demotion: int = 1,
        source: str = "manual",
    ) -> None:
        if demotion <= 0:
            raise QueryError("demotion must be positive")
        self.slow_templates = frozenset(slow_templates)
        self.demotion = demotion
        self.source = source  #: provenance note ("manual", "mined:<window>")
        self._memo: dict[str, bool] = {}
        registry = get_registry()
        self._m_demotions = None
        if registry is not None:
            self._m_demotions = registry.counter(
                "mithrilog_workload_hint_demotions_total",
                "Requests demoted by template admission hints",
            )
            registry.gauge(
                "mithrilog_workload_slow_templates",
                "Templates the active hint provider marks as "
                "pathologically slow",
            ).set(len(self.slow_templates))

    @classmethod
    def from_profile(
        cls,
        profile: "WorkloadProfile",
        latency_factor: float = 2.0,
        min_count: int = 4,
        max_slow: int = 4,
        demotion: int = 1,
    ) -> "TemplateHintProvider":
        """Mine the hint set from a workload profile.

        A template is *pathologically slow* when it was seen often
        enough to trust (``min_count`` completions) and its **minimum**
        service time is at least ``latency_factor`` times the median
        minimum across templates. The min, not the p99: shared passes
        are paced by their most expensive rider, so percentiles smear a
        slow template's cost onto every template that ever shared its
        pass — the cheapest pass a template rode is the one number its
        co-riders cannot inflate. At most ``max_slow`` worst offenders
        are flagged — hints are a scalpel, not a ban list.
        """
        slices = [
            s
            for s in profile.slices("template").values()
            if s.ok >= min_count and s.min_service_ms > 0
        ]
        if not slices:
            return cls((), demotion=demotion, source="mined:empty")
        mins = sorted(s.min_service_ms for s in slices)
        median_min = mins[len(mins) // 2]
        flagged = sorted(
            (s for s in slices if s.min_service_ms >= latency_factor * median_min),
            key=lambda s: (-s.min_service_ms, s.value),
        )[:max_slow]
        return cls(
            (s.value for s in flagged),
            demotion=demotion,
            source=f"mined:{profile.window or 'all'}",
        )

    def __len__(self) -> int:
        return len(self.slow_templates)

    def is_slow(self, query: object) -> bool:
        """Does this query's template carry a slow flag?"""
        text = str(query)
        verdict = self._memo.get(text)
        if verdict is None:
            verdict = template_fingerprint(text) in self.slow_templates
            self._memo[text] = verdict
        return verdict

    def effective_priority(self, request: "Request") -> int:
        """The priority the overload path should compare with."""
        if self.is_slow(request.query):
            return request.priority - self.demotion
        return request.priority

    def note_demotion(self) -> None:
        """Record that a demoted request actually lost a shedding tie."""
        if self._m_demotions is not None:
            self._m_demotions.inc()

    def describe(self) -> dict:
        return {
            "source": self.source,
            "demotion": self.demotion,
            "slow_templates": sorted(self.slow_templates),
        }


def resolve_priority(
    hints: Optional[TemplateHintProvider], request: "Request"
) -> int:
    """Hinted priority when hints are active, the declared one otherwise."""
    if hints is None:
        return request.priority
    return hints.effective_priority(request)
