"""Prototype constants of the MithriLog system, as published in the paper.

Every component reads its provisioning from here so that design-space
ablations (datapath width, hash-filter replication, index node sizes) can be
expressed by constructing components with overridden parameters while the
defaults always match the MICRO 2021 prototype.

Units: bytes unless suffixed otherwise; bandwidths in bytes/second; clock in
Hz; latencies in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Datapath / filter-engine provisioning (Sections 4, 7.2)
# --------------------------------------------------------------------------

#: Width of the accelerator datapath: 128 bits = 16 bytes.
DATAPATH_BYTES = 16

#: Accelerator clock. All pipelines run at 200 MHz in the prototype.
CLOCK_HZ = 200_000_000

#: Number of filter pipelines instantiated across the two FPGAs.
NUM_PIPELINES = 4

#: Tokenizers per pipeline; each ingests 2 bytes/cycle, so eight sustain the
#: 16-byte datapath.
TOKENIZERS_PER_PIPELINE = 8

#: Bytes each tokenizer ingests per cycle (design-space winner, Section 4.1).
TOKENIZER_BYTES_PER_CYCLE = 2

#: Hash filters per pipeline. Two, to absorb the ~2x padding amplification of
#: the tokenized stream (Section 7.4.1).
HASH_FILTERS_PER_PIPELINE = 2

#: Per-pipeline wire-speed: 16 bytes/cycle * 200 MHz = 3.2 GB/s.
PIPELINE_BYTES_PER_SEC = DATAPATH_BYTES * CLOCK_HZ

# --------------------------------------------------------------------------
# Cuckoo hash filter provisioning (Section 4.2)
# --------------------------------------------------------------------------

#: Rows in the cuckoo hash table.
HASH_TABLE_ROWS = 256

#: Bytes provisioned per hash-table token slot (same as datapath width).
HASH_SLOT_BYTES = DATAPATH_BYTES

#: (valid, negative) flag pairs per entry => max intersection sets per query.
FLAG_PAIRS = 8

#: Overflow-table entries for tokens longer than one slot.
OVERFLOW_TABLE_ROWS = 256

#: Cuckoo hashing statistically succeeds below this load factor; the engine
#: refuses queries that would exceed it (the paper over-provisions for this).
CUCKOO_MAX_LOAD_FACTOR = 0.5

#: Maximum displacement chain length before declaring placement failure.
CUCKOO_MAX_KICKS = 64

# --------------------------------------------------------------------------
# LZAH compression (Section 5)
# --------------------------------------------------------------------------

#: LZAH window word size; matches the filter datapath.
LZAH_WORD_BYTES = DATAPATH_BYTES

#: Header-payload pairs grouped per chunk (header = 128 bits = one word).
LZAH_PAIRS_PER_CHUNK = 128

#: Compressor hash table size ("modestly sized 16 KB", Section 7.3.1).
LZAH_HASH_TABLE_BYTES = 16 * 1024

#: Decompressor emits exactly one word per cycle: 3.2 GB/s at 200 MHz.
DECOMPRESSOR_BYTES_PER_SEC = LZAH_WORD_BYTES * CLOCK_HZ

# --------------------------------------------------------------------------
# Storage provisioning (Sections 3, 6, 7.2)
# --------------------------------------------------------------------------

#: Flash page size used throughout (index math in Section 6.1 assumes 4 KB).
PAGE_BYTES = 4096

#: Internal (flash-side) bandwidth of the emulated device: 4 x 1.2 GB/s.
INTERNAL_BANDWIDTH = int(4.8e9)

#: External (PCIe Gen2 x8 DMA) bandwidth to host: 3.1 GB/s.
PCIE_BANDWIDTH = int(3.1e9)

#: Storage access latency assumed by the index design (100 microseconds).
STORAGE_LATENCY_S = 100e-6

#: Comparison platform's RAID-0 NVMe measured peak (Table 3).
COMPARISON_STORAGE_BANDWIDTH = int(7e9)

#: Hyper-threads on the comparison i7-8700K (Section 7.5's /12 amortization).
COMPARISON_THREADS = 12

# --------------------------------------------------------------------------
# Inverted-index provisioning (Section 6)
# --------------------------------------------------------------------------

#: Data-page addresses buffered in memory per hash entry before spilling.
INDEX_MEMORY_BUFFER_ADDRS = 16

#: Entries per in-storage tree root node (linked-list node).
INDEX_ROOT_FANOUT = 16

#: Entries per in-storage leaf node.
INDEX_LEAF_FANOUT = 16

#: Default in-memory hash-table rows for the inverted index. The paper quotes
#: a ~256 MB steady-state footprint; we keep the structure but default to a
#: laptop-friendly row count (parameterisable).
INDEX_HASH_ROWS = 1 << 16

#: Leaf pages created between automatic snapshots (time-based indexing).
SNAPSHOT_LEAF_PAGE_THRESHOLD = 1024


@dataclass(frozen=True)
class PipelineParams:
    """Parameter bundle for one filter pipeline.

    The defaults are the prototype's; ablation benches construct variants
    (e.g. 8- or 32-byte datapaths) and feed them to the performance model.
    """

    datapath_bytes: int = DATAPATH_BYTES
    clock_hz: int = CLOCK_HZ
    tokenizers: int = TOKENIZERS_PER_PIPELINE
    tokenizer_bytes_per_cycle: int = TOKENIZER_BYTES_PER_CYCLE
    hash_filters: int = HASH_FILTERS_PER_PIPELINE

    def __post_init__(self) -> None:
        if self.datapath_bytes <= 0 or self.datapath_bytes % 2:
            raise ValueError("datapath_bytes must be a positive even size")
        ingest = self.tokenizers * self.tokenizer_bytes_per_cycle
        if ingest < self.datapath_bytes:
            raise ValueError(
                f"{self.tokenizers} tokenizers x {self.tokenizer_bytes_per_cycle} B/cy "
                f"cannot sustain a {self.datapath_bytes}-byte datapath"
            )

    @property
    def wire_speed_bytes_per_sec(self) -> int:
        """Raw text throughput at full utilisation: datapath * clock."""
        return self.datapath_bytes * self.clock_hz


@dataclass(frozen=True)
class CuckooParams:
    """Parameter bundle for the cuckoo hash filter."""

    rows: int = HASH_TABLE_ROWS
    slot_bytes: int = HASH_SLOT_BYTES
    flag_pairs: int = FLAG_PAIRS
    overflow_rows: int = OVERFLOW_TABLE_ROWS
    max_load_factor: float = CUCKOO_MAX_LOAD_FACTOR
    max_kicks: int = CUCKOO_MAX_KICKS

    def __post_init__(self) -> None:
        if self.rows & (self.rows - 1):
            raise ValueError("cuckoo row count must be a power of two")
        if not 0 < self.max_load_factor <= 1:
            raise ValueError("max_load_factor must be in (0, 1]")


@dataclass(frozen=True)
class LZAHParams:
    """Parameter bundle for LZAH compression.

    ``newline_realign`` is Section 5's special newline treatment; turning
    it off (ablation) keeps the window moving in fixed word steps across
    line boundaries, costing compression on line-aligned patterns.
    """

    word_bytes: int = LZAH_WORD_BYTES
    pairs_per_chunk: int = LZAH_PAIRS_PER_CHUNK
    hash_table_bytes: int = LZAH_HASH_TABLE_BYTES
    page_bytes: int = PAGE_BYTES
    newline_realign: bool = True

    def __post_init__(self) -> None:
        if self.word_bytes <= 0:
            raise ValueError("word_bytes must be positive")
        if self.pairs_per_chunk <= 0:
            raise ValueError("pairs_per_chunk must be positive")
        if self.hash_table_bytes % self.word_bytes:
            raise ValueError("hash table must hold an integral number of words")

    @property
    def hash_table_slots(self) -> int:
        """Number of word-sized slots in the compressor hash table."""
        return self.hash_table_bytes // self.word_bytes


@dataclass(frozen=True)
class StorageParams:
    """Parameter bundle for the simulated near-storage device."""

    page_bytes: int = PAGE_BYTES
    internal_bandwidth: int = INTERNAL_BANDWIDTH
    external_bandwidth: int = PCIE_BANDWIDTH
    latency_s: float = STORAGE_LATENCY_S
    capacity_pages: int = 1 << 20

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        if self.capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")


@dataclass(frozen=True)
class IndexParams:
    """Parameter bundle for the in-storage inverted index."""

    hash_rows: int = INDEX_HASH_ROWS
    memory_buffer_addrs: int = INDEX_MEMORY_BUFFER_ADDRS
    root_fanout: int = INDEX_ROOT_FANOUT
    leaf_fanout: int = INDEX_LEAF_FANOUT
    num_hash_functions: int = 2
    snapshot_leaf_threshold: int = SNAPSHOT_LEAF_PAGE_THRESHOLD

    def __post_init__(self) -> None:
        if self.hash_rows & (self.hash_rows - 1):
            raise ValueError("index hash rows must be a power of two")
        if self.num_hash_functions not in (1, 2):
            raise ValueError("index supports one or two hash functions")

    @property
    def addrs_per_root_visit(self) -> int:
        """Data-page addresses retrieved per latency-bound list hop."""
        return self.root_fanout * self.leaf_fanout


@dataclass(frozen=True)
class SystemParams:
    """Top-level bundle tying the prototype together."""

    pipeline: PipelineParams = field(default_factory=PipelineParams)
    cuckoo: CuckooParams = field(default_factory=CuckooParams)
    lzah: LZAHParams = field(default_factory=LZAHParams)
    storage: StorageParams = field(default_factory=StorageParams)
    index: IndexParams = field(default_factory=IndexParams)
    num_pipelines: int = NUM_PIPELINES

    @property
    def aggregate_wire_speed(self) -> int:
        """Peak decompressed-text bandwidth across all pipelines (12.8 GB/s)."""
        return self.num_pipelines * self.pipeline.wire_speed_bytes_per_sec


#: The default prototype configuration used throughout examples and benches.
PROTOTYPE = SystemParams()
