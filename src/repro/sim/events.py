"""Minimal ordered event queue for latency modelling.

The storage latency model (Section 6.1's "a 100 microsecond device can only
visit 10,000 index nodes per second") is expressed by scheduling completion
events on this queue and advancing a :class:`repro.sim.clock.SimClock` as
they are drained.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.clock import SimClock


@dataclass(order=True)
class Event:
    """An event scheduled at a simulated timestamp.

    Ordering is (time, sequence) so simultaneous events dispatch in
    scheduling order, which keeps runs deterministic.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """A priority queue of :class:`Event` driven against a clock."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule_at(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to run at absolute simulated ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.clock.now}"
            )
        event = Event(time=time, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.clock.now + delay, action, label)

    def step(self) -> Optional[Event]:
        """Dispatch the next event, advancing the clock to it.

        Returns the dispatched event, or ``None`` if the queue is empty.
        """
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        event.action()
        return event

    def run(self, until: Optional[float] = None) -> int:
        """Dispatch events until the queue empties (or past ``until``).

        Returns the number of events dispatched. Events scheduled during
        dispatch are processed in order as usual.
        """
        dispatched = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            self.step()
            dispatched += 1
        return dispatched
