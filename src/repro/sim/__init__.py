"""Discrete-event simulation substrate.

Provides the cycle/time accounting used by the storage and accelerator
performance models:

- :class:`repro.sim.clock.SimClock` — monotonic simulated time.
- :class:`repro.sim.events.EventQueue` — ordered event dispatch.
- :class:`repro.sim.bandwidth.BandwidthMeter` — throughput accounting.
- :class:`repro.sim.bandwidth.LinkModel` — shared-link transfer-time model.
"""

from repro.sim.bandwidth import BandwidthMeter, LinkModel
from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue

__all__ = ["BandwidthMeter", "Event", "EventQueue", "LinkModel", "SimClock"]
