"""Bandwidth accounting helpers.

Two small models shared by the storage device and the accelerator:

- :class:`BandwidthMeter` records byte totals against a simulated clock and
  reports achieved throughput (used to produce the GB/s rows the paper's
  figures report).
- :class:`LinkModel` computes the transfer time of a burst on a
  fixed-bandwidth link with optional per-transfer latency, and serialises
  overlapping transfers the way a shared PCIe/flash channel would.
"""

from __future__ import annotations

from repro.sim.clock import SimClock


class BandwidthMeter:
    """Accumulates (bytes, seconds) samples and reports throughput."""

    def __init__(self) -> None:
        self._bytes = 0
        self._seconds = 0.0
        self._samples = 0

    @property
    def total_bytes(self) -> int:
        return self._bytes

    @property
    def total_seconds(self) -> float:
        return self._seconds

    @property
    def samples(self) -> int:
        return self._samples

    def record(self, nbytes: int, seconds: float) -> None:
        """Record that ``nbytes`` took ``seconds`` of (simulated) time."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._bytes += nbytes
        self._seconds += seconds
        self._samples += 1

    def bytes_per_second(self) -> float:
        """Achieved throughput; 0.0 when no time has been recorded."""
        if self._seconds == 0:
            return 0.0
        return self._bytes / self._seconds

    def gigabytes_per_second(self) -> float:
        """Achieved throughput in GB/s (decimal gigabytes, as in the paper)."""
        return self.bytes_per_second() / 1e9

    def merge(self, other: "BandwidthMeter") -> None:
        """Fold another meter's samples into this one."""
        self._bytes += other._bytes
        self._seconds += other._seconds
        self._samples += other._samples

    def reset(self) -> None:
        self._bytes = 0
        self._seconds = 0.0
        self._samples = 0

    def __repr__(self) -> str:
        return (
            f"BandwidthMeter(bytes={self._bytes}, seconds={self._seconds:.6f}, "
            f"rate={self.gigabytes_per_second():.3f} GB/s)"
        )


class LinkModel:
    """A fixed-bandwidth, fixed-latency link that serialises transfers.

    ``transfer`` advances the link's busy horizon: a burst issued at time
    ``t`` on a link busy until ``b`` starts at ``max(t, b)``, pays
    ``latency`` once, then streams at ``bandwidth``. The completion time is
    returned so callers can advance their own clocks.
    """

    def __init__(self, bandwidth: int, latency_s: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth = bandwidth
        self.latency_s = latency_s
        self._busy_until = 0.0
        self.meter = BandwidthMeter()

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def transfer_seconds(self, nbytes: int) -> float:
        """Pure service time of a burst (latency + streaming), no queueing."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.bandwidth

    def transfer(self, nbytes: int, start_time: float) -> float:
        """Issue a burst at ``start_time``; return its completion time."""
        begin = max(start_time, self._busy_until)
        done = begin + self.transfer_seconds(nbytes)
        self._busy_until = done
        self.meter.record(nbytes, done - begin)
        return done

    def transfer_on(self, clock: SimClock, nbytes: int) -> float:
        """Issue a burst at the clock's current time and advance the clock."""
        done = self.transfer(nbytes, clock.now)
        clock.advance_to(done)
        return done

    def reset(self) -> None:
        self._busy_until = 0.0
        self.meter.reset()

    def __repr__(self) -> str:
        return f"LinkModel(bandwidth={self.bandwidth}, latency={self.latency_s})"
