"""Simulated time source.

The performance models in this library never read wall-clock time; they
advance a :class:`SimClock`. This keeps every benchmark deterministic and
lets a "12.8 GB/s" accelerator be modelled faithfully on any host.
"""

from __future__ import annotations


class SimClock:
    """A monotonic simulated clock measured in seconds.

    The clock can only move forward. Components call :meth:`advance` with
    the duration of the work they modelled, or :meth:`advance_to` to join a
    later point in time (e.g. when waiting on a slower producer).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("simulated time cannot start negative")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative {seconds!r}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` if it is in the future.

        Advancing to a past timestamp is a no-op rather than an error: it is
        the natural semantics for "this work completes no earlier than t".
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def cycles_to_seconds(self, cycles: int, clock_hz: int) -> float:
        """Convert a cycle count at ``clock_hz`` into seconds."""
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        return cycles / clock_hz

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.9f})"
