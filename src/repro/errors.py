"""Exception hierarchy for the MithriLog reproduction.

All library-raised errors derive from :class:`MithriLogError` so callers can
catch the whole family with one clause while still being able to distinguish
the specific failure (query compilation, storage, compression, index).
"""

from __future__ import annotations


class MithriLogError(Exception):
    """Base class for all errors raised by this library."""


class QueryError(MithriLogError):
    """A query is malformed or cannot be represented."""


class QueryParseError(QueryError):
    """The textual query form could not be parsed."""


class PlacementError(QueryError):
    """Cuckoo hash placement failed; the query cannot be offloaded.

    The paper's remedy is falling back to software evaluation
    (Section 4.2.1); :class:`repro.core.engine.TokenFilterEngine` does this
    automatically unless configured otherwise.
    """


class CapacityError(QueryError):
    """The query exceeds fixed hardware provisioning (e.g. more than
    ``FLAG_PAIRS`` intersection sets, or overflow table exhaustion)."""


class StorageError(MithriLogError):
    """A simulated storage device operation failed."""


class PageBoundsError(StorageError):
    """A page address is outside the device's provisioned capacity."""


class PageCorruptionError(StorageError):
    """A page failed its integrity check on read (fault injection)."""


class CompressionError(MithriLogError):
    """Compression or decompression failed."""


class CompressedFormatError(CompressionError):
    """A compressed stream violates the on-disk format."""


class IndexError_(MithriLogError):
    """Inverted-index operation failed.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class IngestError(MithriLogError):
    """End-to-end ingestion failed."""
