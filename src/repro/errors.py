"""Exception hierarchy for the MithriLog reproduction.

All library-raised errors derive from :class:`MithriLogError` so callers can
catch the whole family with one clause while still being able to distinguish
the specific failure (query compilation, storage, compression, index).

Storage errors are further split by *recoverability*: transient faults
(:class:`PageReadError`, :class:`PageCorruptionError`) are retried by the
device's read path under a bounded :class:`repro.faults.RetryPolicy`, while
persistent faults (:class:`BadBlockError`, :class:`UnwrittenPageError`)
fail fast and surface to the cluster layer, which degrades the query
instead of crashing it.
"""

from __future__ import annotations

import warnings


class MithriLogError(Exception):
    """Base class for all errors raised by this library."""


class QueryError(MithriLogError):
    """A query is malformed or cannot be represented."""


class QueryParseError(QueryError):
    """The textual query form could not be parsed."""


class PlacementError(QueryError):
    """Cuckoo hash placement failed; the query cannot be offloaded.

    The paper's remedy is falling back to software evaluation
    (Section 4.2.1); :class:`repro.core.engine.TokenFilterEngine` does this
    automatically unless configured otherwise.
    """


class CapacityError(QueryError):
    """The query exceeds fixed hardware provisioning (e.g. more than
    ``FLAG_PAIRS`` intersection sets, or overflow table exhaustion)."""


class StorageError(MithriLogError):
    """A simulated storage device operation failed."""


class PageBoundsError(StorageError):
    """A page address is outside the device's provisioned capacity."""


class UnwrittenPageError(PageBoundsError):
    """A page address inside capacity was read before ever being written.

    Subclasses :class:`PageBoundsError` because, to the reader, the address
    is equally outside the valid (written) region — callers that handle
    bounds errors handle this one too.
    """


class PageReadError(StorageError):
    """A page read failed transiently (media/bus error); retrying may succeed.

    Raised by fault injection (:class:`repro.faults.PageFaultInjector`); the
    device's retry policy re-issues the read.
    """


class PageCorruptionError(StorageError):
    """A page failed its integrity check on read (bit flip caught by the
    page checksum). Treated as transient: a re-read may return clean data
    when the flip happened on the read path rather than in the cells."""


class BadBlockError(StorageError):
    """A flash block went bad and the data on it is unrecoverable.

    Persistent: retries cannot help. The cluster layer reports the shard
    as degraded instead of failing the whole query.
    """


class ReadRetryExhaustedError(StorageError):
    """A transient read fault persisted through every allowed retry."""


class WalRecordError(StorageError):
    """A write-ahead-log record is corrupt (bad checksum, bad structure)."""


class TornRecordError(WalRecordError):
    """A write-ahead-log record is incomplete (crash tore the append)."""


class ShardUnavailableError(StorageError):
    """A whole cluster shard (device) is unreachable or down."""


class CompressionError(MithriLogError):
    """Compression or decompression failed."""


class CompressedFormatError(CompressionError):
    """A compressed stream violates the on-disk format."""


class LogIndexError(MithriLogError):
    """Inverted-index operation failed."""


class IngestError(MithriLogError):
    """End-to-end ingestion failed."""


#: Transient storage faults the device read path retries; everything else
#: under :class:`StorageError` is persistent and fails fast.
RETRYABLE_STORAGE_ERRORS = (PageReadError, PageCorruptionError)


def __getattr__(name: str):
    """Deprecation shim: ``IndexError_`` was renamed to ``LogIndexError``."""
    if name == "IndexError_":
        warnings.warn(
            "repro.errors.IndexError_ is deprecated; use LogIndexError",
            DeprecationWarning,
            stacklevel=2,
        )
        return LogIndexError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
