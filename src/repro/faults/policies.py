"""How the stack responds to transient faults: bounded retry-with-backoff.

Real storage stacks re-issue failed page reads a small, bounded number of
times with growing spacing (the controller's read-retry tables do exactly
this on raw-bit-error spikes). :class:`RetryPolicy` models that budget;
the device charges each backoff to the simulation clock when one is
attached, so fault-heavy runs correctly show degraded latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-exponential-backoff for transient read faults.

    ``max_attempts`` counts the initial try plus retries (so 4 means up
    to 3 re-reads). Backoff for retry *k* (1-based) is
    ``backoff_s * multiplier**(k-1)``.
    """

    max_attempts: int = 4
    backoff_s: float = 100e-6  # first re-read after 100 µs
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise StorageError("retry policy needs at least one attempt")
        if self.backoff_s < 0 or self.multiplier < 1.0:
            raise StorageError("backoff must be >= 0 and multiplier >= 1")

    def backoff(self, retry_index: int) -> float:
        """Seconds to wait before 1-based retry ``retry_index``."""
        if retry_index < 1:
            raise StorageError("retry_index is 1-based")
        return self.backoff_s * self.multiplier ** (retry_index - 1)

    @property
    def max_retries(self) -> int:
        """Retries available after the first attempt."""
        return self.max_attempts - 1


#: The device default: one initial read plus three spaced re-reads.
DEFAULT_RETRY_POLICY = RetryPolicy()
