"""When a fault fires.

A :class:`FaultSchedule` answers one question — "does the fault fire on
this operation?" — given the injector's operation counter and, when the
operation targets storage, the page address. Two families:

- **probability-based**: :class:`BernoulliSchedule` draws from its own
  seeded :class:`random.Random`, so a 1% fault rate replays identically
  run after run;
- **schedule-based**: :class:`EveryNthSchedule`,
  :class:`AtOperationsSchedule` and :class:`AddressSchedule` fire at
  exact, pre-planned points — the tool for regression tests that need a
  fault on *precisely* the third read of page 7.

Schedules compose with ``|`` (fires if either does) and ``&`` (fires only
if both do). All schedules are deterministic given their construction
arguments; none reads global random state.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional


class FaultSchedule:
    """Base schedule: decides whether a fault fires on one operation."""

    def fires(self, op_index: int, address: Optional[int] = None) -> bool:
        """Return True when the fault should fire on this operation."""
        raise NotImplementedError

    def __or__(self, other: "FaultSchedule") -> "FaultSchedule":
        return _AnySchedule(self, other)

    def __and__(self, other: "FaultSchedule") -> "FaultSchedule":
        return _AllSchedule(self, other)


class _AnySchedule(FaultSchedule):
    """Fires when any member schedule fires."""

    def __init__(self, *members: FaultSchedule) -> None:
        self.members = members

    def fires(self, op_index: int, address: Optional[int] = None) -> bool:
        """True when at least one member fires."""
        return any(m.fires(op_index, address) for m in self.members)


class _AllSchedule(FaultSchedule):
    """Fires only when every member schedule fires."""

    def __init__(self, *members: FaultSchedule) -> None:
        self.members = members

    def fires(self, op_index: int, address: Optional[int] = None) -> bool:
        """True when all members fire."""
        return all(m.fires(op_index, address) for m in self.members)


class NeverSchedule(FaultSchedule):
    """Never fires — the explicit off switch."""

    def fires(self, op_index: int, address: Optional[int] = None) -> bool:
        """Always False."""
        return False


class AlwaysSchedule(FaultSchedule):
    """Fires on every operation — the worst-case switch."""

    def fires(self, op_index: int, address: Optional[int] = None) -> bool:
        """Always True."""
        return True


class BernoulliSchedule(FaultSchedule):
    """Fires independently with probability ``rate`` per operation.

    Draws come from a private seeded generator, so two runs with the same
    seed inject faults on exactly the same operations regardless of what
    other code does with the global :mod:`random` state.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate {rate} outside [0, 1]")
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(seed)

    def fires(self, op_index: int, address: Optional[int] = None) -> bool:
        """Seeded Bernoulli draw."""
        if self.rate == 0.0:
            return False
        return self._rng.random() < self.rate

    def reset(self) -> None:
        """Rewind the generator to reproduce the same fault sequence."""
        self._rng = random.Random(self.seed)


class EveryNthSchedule(FaultSchedule):
    """Fires on every ``n``-th operation (op_index ≡ offset mod n)."""

    def __init__(self, n: int, offset: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.offset = offset % n

    def fires(self, op_index: int, address: Optional[int] = None) -> bool:
        """True when the operation index hits the stride."""
        return op_index % self.n == self.offset


class AtOperationsSchedule(FaultSchedule):
    """Fires at an explicit set of operation indices."""

    def __init__(self, op_indices: Iterable[int]) -> None:
        self.op_indices = frozenset(op_indices)

    def fires(self, op_index: int, address: Optional[int] = None) -> bool:
        """True when the operation index is in the planned set."""
        return op_index in self.op_indices


class AddressSchedule(FaultSchedule):
    """Fires whenever the operation targets one of the given addresses.

    Address-keyed faults are *persistent by construction* — every access
    to a listed page fails — which is how bad cells behave, as opposed to
    the transient, operation-keyed schedules above.
    """

    def __init__(self, addresses: Iterable[int]) -> None:
        self.addresses = frozenset(addresses)

    def fires(self, op_index: int, address: Optional[int] = None) -> bool:
        """True when the target address is in the bad set."""
        return address is not None and address in self.addresses
