"""What a fault does at each hook point.

Injectors sit at the stack's natural failure surfaces:

- :class:`PageFaultInjector` — consulted by ``FlashArray`` on every page
  read; models transient read errors (retryable), bit flips caught by the
  page checksum (retryable: the flip happened on the read path), and
  persistently bad page addresses (not retryable — the cells are gone);
- :class:`WalFaultInjector` — consulted by ``WriteAheadLog.append``;
  models a crash tearing the record mid-write;
- :class:`ShardFaultInjector` — consulted by ``MithriLogCluster.query``;
  models a whole device dropping out of the scatter-gather.

Each injector owns an operation counter, feeds it to its
:class:`~repro.faults.schedules.FaultSchedule`, and records every fired
fault in a :class:`~repro.faults.reporting.FaultLog`. Randomness (which
byte flips, where a record tears) comes from a private seeded generator.
"""

from __future__ import annotations

import enum
import random
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import BadBlockError, PageReadError, ShardUnavailableError
from repro.faults.reporting import FaultLog
from repro.faults.schedules import FaultSchedule, NeverSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.storage.page import Page


class FaultKind(enum.Enum):
    """The fault vocabulary, matching the paper's hardware failure modes."""

    READ_ERROR = "read_error"  #: transient page read failure
    BIT_FLIP = "bit_flip"  #: checksum mismatch on the read path
    BAD_BLOCK = "bad_block"  #: persistent, unrecoverable page loss
    TORN_WRITE = "torn_write"  #: WAL record cut short by a crash
    SHARD_DOWN = "shard_down"  #: whole device missing from the cluster
    COMPILE_REJECT = "compile_reject"  #: service refuses a query's program
    SLOW_PASS = "slow_pass"  #: an accelerator pass running degraded/slow


class PageFaultInjector:
    """Injects faults into flash page reads.

    ``read_errors`` and ``bit_flips`` are schedules keyed by the read
    operation counter (transient); ``bad_addresses`` is a set of page
    addresses that are permanently unreadable (persistent).
    """

    def __init__(
        self,
        read_errors: Optional[FaultSchedule] = None,
        bit_flips: Optional[FaultSchedule] = None,
        bad_addresses: Iterable[int] = (),
        seed: int = 0,
        log: Optional[FaultLog] = None,
    ) -> None:
        self.read_errors = read_errors if read_errors is not None else NeverSchedule()
        self.bit_flips = bit_flips if bit_flips is not None else NeverSchedule()
        self.bad_addresses = set(bad_addresses)
        self._rng = random.Random(seed)
        self.log = log if log is not None else FaultLog()
        self.reads = 0

    def mark_bad(self, address: int) -> None:
        """Permanently fail every future read of ``address``."""
        self.bad_addresses.add(address)

    def on_read(self, address: int, page: "Page") -> "Page":
        """Called by the flash array with the stored page; may raise or
        return a corrupted copy (the stored page itself is untouched, so
        a re-read can succeed — that is what makes these faults
        transient)."""
        op = self.reads
        self.reads += 1
        if address in self.bad_addresses:
            self.log.record(FaultKind.BAD_BLOCK.value, op, address=address)
            raise BadBlockError(f"page {address} lies on a bad block")
        if self.read_errors.fires(op, address):
            self.log.record(FaultKind.READ_ERROR.value, op, address=address)
            raise PageReadError(f"transient read error on page {address}")
        if self.bit_flips.fires(op, address) and len(page):
            pos = self._rng.randrange(len(page))
            self.log.record(
                FaultKind.BIT_FLIP.value, op, address=address, detail=f"byte {pos}"
            )
            return page.corrupted(pos)
        return page


class WalFaultInjector:
    """Tears write-ahead-log appends, simulating a crash mid-write."""

    def __init__(
        self,
        torn_writes: Optional[FaultSchedule] = None,
        seed: int = 0,
        log: Optional[FaultLog] = None,
    ) -> None:
        self.torn_writes = torn_writes if torn_writes is not None else NeverSchedule()
        self._rng = random.Random(seed)
        self.log = log if log is not None else FaultLog()
        self.appends = 0

    def on_append(self, record: bytes) -> bytes:
        """Return the bytes that actually reach the file — possibly a
        prefix of the record, as a crash mid-``write`` would leave."""
        op = self.appends
        self.appends += 1
        if len(record) > 1 and self.torn_writes.fires(op):
            cut = self._rng.randrange(1, len(record))
            self.log.record(
                FaultKind.TORN_WRITE.value, op, detail=f"cut at {cut}/{len(record)}"
            )
            return record[:cut]
        return record


class ShardFaultInjector:
    """Drops whole shards out of cluster scatter-gather queries."""

    def __init__(
        self,
        shard_down: Optional[FaultSchedule] = None,
        log: Optional[FaultLog] = None,
    ) -> None:
        self.shard_down = shard_down if shard_down is not None else NeverSchedule()
        self.log = log if log is not None else FaultLog()
        self.queries = 0

    def on_query(self, shard_index: int) -> None:
        """Called once per shard per scatter; raises when the shard is down."""
        op = self.queries
        self.queries += 1
        if self.shard_down.fires(op, shard_index):
            self.log.record(FaultKind.SHARD_DOWN.value, op, address=shard_index)
            raise ShardUnavailableError(f"shard {shard_index} is unreachable")


class ServiceFaultInjector:
    """Injects faults into the multi-tenant query service layer.

    Two failure modes the service must turn into *explicit outcomes*
    rather than hangs or crashes:

    - ``compile_rejects`` — a request's program is refused at the front
      door (the hardware probe says it cannot place), keyed by the
      admission operation counter; the service answers ``REJECTED``
      with reason ``compile_fault``.
    - ``slow_passes`` — an accelerator pass runs ``slowdown`` times
      slower than modelled (a degraded shard, a busy device), keyed by
      the pass counter; queued requests behind it feel the latency and
      the deadline/shedding machinery reacts.
    """

    def __init__(
        self,
        compile_rejects: Optional[FaultSchedule] = None,
        slow_passes: Optional[FaultSchedule] = None,
        slowdown: float = 4.0,
        log: Optional[FaultLog] = None,
    ) -> None:
        if slowdown < 1.0:
            raise ValueError("slowdown must be at least 1.0")
        self.compile_rejects = (
            compile_rejects if compile_rejects is not None else NeverSchedule()
        )
        self.slow_passes = (
            slow_passes if slow_passes is not None else NeverSchedule()
        )
        self.slowdown = slowdown
        self.log = log if log is not None else FaultLog()
        self.admissions = 0
        self.passes = 0

    def on_admit(self, tenant: str) -> bool:
        """Called once per admitted-for-compile request; True = reject."""
        op = self.admissions
        self.admissions += 1
        if self.compile_rejects.fires(op):
            self.log.record(FaultKind.COMPILE_REJECT.value, op, detail=tenant)
            return True
        return False

    def on_pass(self, batch_size: int) -> float:
        """Called once per accelerator pass; returns a time multiplier."""
        op = self.passes
        self.passes += 1
        if self.slow_passes.fires(op):
            self.log.record(
                FaultKind.SLOW_PASS.value,
                op,
                detail=f"x{self.slowdown:g} over {batch_size} queries",
            )
            return self.slowdown
        return 1.0


def inject_page_faults(
    target,
    read_errors: Optional[FaultSchedule] = None,
    bit_flips: Optional[FaultSchedule] = None,
    bad_addresses: Iterable[int] = (),
    seed: int = 0,
    log: Optional[FaultLog] = None,
) -> FaultLog:
    """Attach page-read fault injectors to a system, cluster, or flash array.

    Accepts a ``MithriLogCluster`` (every shard's flash gets its own
    injector, seeded ``seed + shard``), a ``MithriLogSystem`` (its
    device's flash), a ``MithriLogDevice``, or a bare ``FlashArray``.
    All injectors share (and the call returns) one :class:`FaultLog`.
    """
    shared = log if log is not None else FaultLog()

    def _make(s: int) -> PageFaultInjector:
        return PageFaultInjector(
            read_errors=read_errors,
            bit_flips=bit_flips,
            bad_addresses=bad_addresses,
            seed=s,
            log=shared,
        )

    if hasattr(target, "shards"):
        for index, shard in enumerate(target.shards):
            shard.device.flash.fault_injector = _make(seed + index)
    elif hasattr(target, "device"):
        target.device.flash.fault_injector = _make(seed)
    elif hasattr(target, "flash"):
        target.flash.fault_injector = _make(seed)
    elif hasattr(target, "read_page"):
        target.fault_injector = _make(seed)
    else:
        raise TypeError(f"cannot attach page faults to {type(target).__name__}")
    return shared
