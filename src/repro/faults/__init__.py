"""Deterministic fault injection for the simulated MithriLog stack.

The paper's prototype runs on real flash (BlueDBM), where page read
errors, bit flips, bad blocks, torn writes and device loss are facts of
life. This package injects those faults into the simulated stack —
*deterministically and seedably*, so every failure a test provokes is
reproducible — and provides the policies the stack uses to survive them.

Layout:

- :mod:`repro.faults.schedules` — when a fault fires (probability- and
  schedule-based decisions, all seeded);
- :mod:`repro.faults.injectors` — what the fault does at each hook point
  (flash page reads, WAL appends, cluster shards, FTL blocks);
- :mod:`repro.faults.policies` — how the stack responds (bounded
  retry-with-backoff);
- :mod:`repro.faults.reporting` — what happened (fault log, per-kind
  counters, recovery statistics).

Hook points: ``FlashArray.read_page``/``read_pages`` consult an optional
:class:`PageFaultInjector`; ``WriteAheadLog.append`` consults an optional
:class:`WalFaultInjector`; ``MithriLogCluster.query`` consults an optional
:class:`ShardFaultInjector`; ``FlashTranslationLayer.retire_block``
models a block going bad. With no injector attached every hook is a
single ``is None`` check — zero overhead on the hot path.
"""

from repro.faults.injectors import (
    FaultKind,
    PageFaultInjector,
    ServiceFaultInjector,
    ShardFaultInjector,
    WalFaultInjector,
    inject_page_faults,
)
from repro.faults.policies import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.faults.reporting import FaultEvent, FaultLog, RecoveryStats
from repro.faults.schedules import (
    AddressSchedule,
    AlwaysSchedule,
    AtOperationsSchedule,
    BernoulliSchedule,
    EveryNthSchedule,
    FaultSchedule,
    NeverSchedule,
)

__all__ = [
    "AddressSchedule",
    "AlwaysSchedule",
    "AtOperationsSchedule",
    "BernoulliSchedule",
    "DEFAULT_RETRY_POLICY",
    "EveryNthSchedule",
    "FaultEvent",
    "FaultKind",
    "FaultLog",
    "FaultSchedule",
    "NeverSchedule",
    "PageFaultInjector",
    "RecoveryStats",
    "RetryPolicy",
    "ServiceFaultInjector",
    "ShardFaultInjector",
    "WalFaultInjector",
    "inject_page_faults",
]
