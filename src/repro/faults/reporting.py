"""What happened: fault events, per-kind counters, recovery statistics.

Every injector records each fault it fires into a :class:`FaultLog`;
recovery code (the device retry loop, WAL repair, cluster degradation)
records how the fault was absorbed. Tests assert against these counters
instead of scraping logs, and the e2e robustness suite uses them to
prove "no silent data loss": every injected fault is either retried to
success, repaired, or visible in a degraded result — never unaccounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import get_registry

#: Which component each fault kind strikes (the metrics label).
FAULT_COMPONENTS = {
    "read_error": "flash",
    "bit_flip": "flash",
    "bad_block": "flash",
    "torn_write": "wal",
    "shard_down": "cluster",
    "compile_reject": "service",
    "slow_pass": "service",
}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what kind, where, on which operation."""

    kind: str
    op_index: int
    address: Optional[int] = None
    detail: str = ""


@dataclass
class RecoveryStats:
    """How injected faults were absorbed by the stack."""

    retries: int = 0  #: re-issued page reads that eventually succeeded
    retry_failures: int = 0  #: reads abandoned after the retry budget
    wal_records_dropped: int = 0  #: torn/corrupt WAL tail records discarded
    wal_bytes_truncated: int = 0  #: bytes cut off the WAL by repair
    shards_degraded: int = 0  #: shard queries answered by degradation

    def merge(self, other: "RecoveryStats") -> "RecoveryStats":
        """Combine two recovery tallies (e.g. across cluster shards)."""
        return RecoveryStats(
            retries=self.retries + other.retries,
            retry_failures=self.retry_failures + other.retry_failures,
            wal_records_dropped=self.wal_records_dropped
            + other.wal_records_dropped,
            wal_bytes_truncated=self.wal_bytes_truncated
            + other.wal_bytes_truncated,
            shards_degraded=self.shards_degraded + other.shards_degraded,
        )


@dataclass
class FaultLog:
    """Append-only record of injected faults plus recovery tallies.

    One log can be shared across many injectors (a cluster's worth), so
    a single object answers "what did this run inject, and did the stack
    absorb all of it?".
    """

    events: list[FaultEvent] = field(default_factory=list)
    recovery: RecoveryStats = field(default_factory=RecoveryStats)

    def __post_init__(self) -> None:
        # Fault events double as metrics: one counter labeled by kind and
        # component, bound from the registry active at construction.
        registry = get_registry()
        self._m_faults = (
            registry.counter(
                "mithrilog_faults_injected_total",
                "Injected faults by kind and component",
                labelnames=("kind", "component"),
            )
            if registry is not None
            else None
        )

    def record(
        self,
        kind: str,
        op_index: int,
        address: Optional[int] = None,
        detail: str = "",
        component: Optional[str] = None,
    ) -> None:
        """Append one fault event (and count it in the metrics registry).

        ``component`` defaults to the canonical owner of the fault kind
        (flash for read faults, wal for torn writes, cluster for shard
        loss); injectors at unusual hook points can override it.
        """
        self.events.append(
            FaultEvent(kind=kind, op_index=op_index, address=address, detail=detail)
        )
        if self._m_faults is not None:
            self._m_faults.inc(
                kind=kind,
                component=component
                if component is not None
                else FAULT_COMPONENTS.get(kind, "unknown"),
            )

    def count(self, kind: Optional[str] = None) -> int:
        """Number of injected faults, optionally of one kind."""
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)

    def by_kind(self) -> dict[str, int]:
        """Fault counts keyed by kind."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line human-readable account of the run."""
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.by_kind().items())
        )
        rec = self.recovery
        return (
            f"injected [{kinds or 'none'}]; "
            f"retries={rec.retries} retry_failures={rec.retry_failures} "
            f"wal_dropped={rec.wal_records_dropped} "
            f"degraded_shards={rec.shards_degraded}"
        )
