"""Command-line interface.

The workflows a downstream user needs, without writing Python::

    python -m repro generate --dataset Liberty2 --lines 20000 --out my.log
    python -m repro ingest   --log my.log --store ./store
    python -m repro query    --store ./store '"Failed" AND NOT "pbs_mom:"'
    python -m repro templates --log my.log --top 10
    python -m repro stats    --store ./store --format prometheus
    python -m repro trace    --store ./store 'KERNEL' --out trace.json
    python -m repro explain  --store ./store 'KERNEL' --analyze
    python -m repro watch-perf BENCH_hotpath.json fresh.json
    python -m repro serve-sim --log my.log --offered-qps 800 --max-loss 0.5
    python -m repro loadgen  --log my.log --multiples 0.5,1,2 --out sweep.json
    python -m repro workload mine   --journal journal.json --top 5
    python -m repro workload report --journal-a a.json --journal-b b.json
    python -m repro slo check --config slo.json --journal journal.json
    python -m repro slo watch --journal journal.json --bundle-out incidents/
    python -m repro stream register --name errors --expression 'ERROR' \
        --threshold 50 --out stream.json
    python -m repro stream status --config stream.json --log my.log \
        --out stream_status.json
    python -m repro compress --log my.log

Every command prints a short human-readable report; ``query`` also
prints matching lines (bounded by ``--limit``).

Output discipline: reports and diagnostics go through
:mod:`repro.obs.log` (so ``--quiet`` / ``--verbose`` work uniformly),
while a command's *payload* — matched lines, Prometheus text, JSON —
is written to stdout directly and survives ``--quiet``, which keeps
piping (``repro stats --format prometheus | promtool ...``) clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.query import parse_query
from repro.datasets.loader import read_log_lines
from repro.datasets.schema import DATASET_SPECS
from repro.datasets.synthetic import generator_for
from repro.errors import MithriLogError
from repro.obs.expose import bootstrap_families, render_prometheus, snapshot
from repro.obs.log import get_logger
from repro.obs.tracing import SpanTracer, TraceError, validate_chrome_trace
from repro.system.mithrilog import MithriLogSystem
from repro.system.persistence import load_store, save_store

log = get_logger("repro.cli")


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = generator_for(args.dataset, seed=args.seed)
    count = 0
    with open(args.out, "wb") as handle:
        for line in generator.iter_lines(args.lines):
            handle.write(line + b"\n")
            count += 1
    log.info(f"wrote {count:,} {args.dataset}-like lines to {args.out}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.datasets.timestamps import extract_epochs

    lines = read_log_lines(args.log)
    system = MithriLogSystem(seed=args.seed)
    timestamps = extract_epochs(lines) if args.timestamps else None
    if args.timestamps and timestamps is None:
        log.warning("could not extract epochs; ingesting without time index")
    report = system.ingest(lines, timestamps=timestamps)
    if timestamps is not None:
        system.index.flush(timestamp=timestamps[-1])
        log.info(f"time index: {timestamps[0]:.0f} .. {timestamps[-1]:.0f}")
    save_store(system, args.store)
    log.info(
        f"ingested {report.lines:,} lines ({report.original_bytes / 1e6:.2f} MB) "
        f"into {report.pages_written} pages at "
        f"{report.compression_ratio:.2f}x compression"
    )
    log.debug(
        "ingest breakdown",
        bottleneck=report.bottleneck,
        **{k: f"{v:.6f}s" for k, v in report.breakdown.items()},
    )
    log.info(f"store saved to {args.store}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    system = load_store(args.store, seed=args.seed)
    query = parse_query(args.expression)
    time_range = None
    if args.since is not None or args.until is not None:
        time_range = (args.since, args.until)
    if args.explain:
        from repro.system.planner import QueryPlanner

        plan = QueryPlanner(system).plan(query)
        log.info(f"plan: {'index path' if plan.use_index else 'full scan'}")
        log.info(f"  {plan.reason}")
        log.info(
            f"  estimated candidates: {plan.estimated_candidate_pages}/"
            f"{plan.total_pages} pages "
            f"({100 * plan.estimated_selectivity:.0f}%)"
        )
        log.info(
            f"  estimated: index path {plan.estimated_index_path_s * 1e3:.2f} ms, "
            f"full scan {plan.estimated_scan_s * 1e3:.2f} ms"
        )
        return 0
    if args.workers > 1 and args.stop_after is not None:
        log.warning("--stop-after forces the serial scan path; ignoring --workers")
    if args.sample_fraction is not None and args.stop_after is not None:
        log.error("--sample-fraction cannot be combined with --stop-after")
        return 2
    outcome = system.query(
        query,
        use_index=not args.no_index,
        time_range=time_range,
        limit=args.stop_after,
        newest_first=args.newest_first,
        workers=args.workers,
        analyze=args.analyze,
        sample_fraction=args.sample_fraction,
        sample_seed=args.sample_seed,
    )
    stats = outcome.stats
    log.info(
        f"{len(outcome.matched_lines):,} matching lines "
        f"({stats.candidate_pages}/{stats.total_pages} pages read, "
        f"{stats.elapsed_s * 1e3:.2f} ms simulated, "
        f"{outcome.effective_throughput(system.original_bytes) / 1e9:.1f} GB/s effective)"
    )
    if outcome.estimates is not None:
        estimate = outcome.estimates[0]
        log.info(
            f"  sampled scan: {stats.pages_sampled}/{stats.candidate_pages} "
            f"candidate pages at fraction {estimate.fraction:g} — "
            f"estimated {estimate.estimate:,.0f} matches "
            f"({100 * estimate.confidence:.0f}% CI "
            f"[{estimate.ci_low:,.0f}, {estimate.ci_high:,.0f}])"
        )
    log.debug(
        "query breakdown",
        bottleneck=stats.bottleneck,
        **{k: f"{v:.6f}s" for k, v in stats.breakdown.items()},
    )
    if args.aggregate:
        from repro.analytics.aggregate import aggregate_matches

        log.info(aggregate_matches(outcome.matched_lines).render())
        return 0
    for line in outcome.matched_lines[: args.limit]:
        print(line.decode(errors="replace"))
    hidden = len(outcome.matched_lines) - args.limit
    if hidden > 0:
        log.info(f"... {hidden:,} more (raise --limit to see them)")
    if outcome.explain is not None:
        print(outcome.explain.render())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    system = load_store(args.store, seed=args.seed)
    query = parse_query(args.expression)
    report = system.explain(
        query,
        use_index=not args.no_index,
        analyze=args.analyze,
        workers=args.workers,
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render())
    if args.out is not None:
        report.write(args.out)
        log.info(f"explain report written to {args.out}")
    return 0


def _cmd_templates(args: argparse.Namespace) -> int:
    from repro.templates.fttree import FTTree, FTTreeParams

    lines = read_log_lines(args.log)
    tree = FTTree.from_lines(
        lines,
        FTTreeParams(
            max_depth=args.depth,
            prune_threshold=args.prune,
            max_doc_frequency=0.9,
        ),
    )
    log.info(f"{len(tree.templates)} templates extracted from {len(lines):,} lines")
    for template in tree.templates[: args.top]:
        log.info(f"  {template}")
        log.info(f"    query: {tree.template_query(template)}")
    return 0


def _cmd_tag(args: argparse.Namespace) -> int:
    from repro.core.tagger import TemplateTagger
    from repro.templates.fttree import FTTree, FTTreeParams

    lines = read_log_lines(args.log)
    tree = FTTree.from_lines(
        lines,
        FTTreeParams(max_depth=10, prune_threshold=32, max_doc_frequency=0.9),
    )
    tagger = TemplateTagger.from_tree(tree)
    histogram = tagger.histogram(lines)
    tagged = sum(count for tid, count in histogram.items() if tid is not None)
    log.info(
        f"{len(tree.templates)} templates, {tagger.num_passes} accelerator "
        f"passes, {tagged}/{len(lines)} lines tagged"
    )
    by_id = {t.template_id: t for t in tree.templates}
    ranked = sorted(
        ((tid, count) for tid, count in histogram.items() if tid is not None),
        key=lambda item: -item[1],
    )
    for tid, count in ranked[: args.top]:
        log.info(f"  {count:>7,}  {by_id[tid]}")
    unparsed = histogram.get(None, 0)
    if unparsed:
        log.info(f"  {unparsed:>7,}  (unparsed)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    # pre-register the canonical metric families so a fresh process still
    # exposes every family (storage, pipeline, index, WAL, faults) even
    # where the loaded store has recorded nothing yet
    bootstrap_families()
    system = load_store(args.store, seed=args.seed)
    if args.format == "prometheus":
        sys.stdout.write(render_prometheus())
        return 0
    if args.format == "json":
        print(json.dumps(snapshot(), indent=2, sort_keys=True))
        return 0
    log.info(f"store: {args.store}")
    log.info(f"  lines: {system.total_lines:,}")
    log.info(f"  original size: {system.original_bytes / 1e6:.2f} MB")
    log.info(f"  data pages: {system.index.total_data_pages}")
    log.info(f"  flash pages total: {system.device.flash.pages_written}")
    log.info(f"  index memory: {system.index.memory_footprint_bytes() / 1024:.0f} KiB")
    log.info(f"  snapshots: {len(system.index.snapshots.snapshots)}")

    def _rate(value: Optional[float]) -> str:
        return f"{value / 1e9:.2f} GB/s" if value else "unknown"

    # the per-stage accelerator capability measured at ingest (and
    # persisted with the store) — the rates the scan-time model charges
    log.info("  accelerator rates:")
    log.info(f"    filter pipelines: {_rate(system._pipeline_rate)}")
    log.info(f"    decompressor: {_rate(system._decompressor_rate)}")
    log.info(f"    effective (min of both): {_rate(system._accelerator_rate)}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    system = load_store(args.store, seed=args.seed)
    system.tracer = SpanTracer(clock=system.clock)
    query = parse_query(args.expression)
    outcome = system.query(query, use_index=not args.no_index)
    path = system.tracer.write_chrome_trace(
        args.out, utilization=args.utilization
    )
    spans = validate_chrome_trace(path)
    log.info(
        f"wrote {spans} spans to {path} "
        f"({len(outcome.matched_lines):,} matching lines, "
        f"{outcome.stats.elapsed_s * 1e3:.2f} ms simulated)"
    )
    log.info("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_watch_perf(args: argparse.Namespace) -> int:
    from repro.obs.watch import main as watch_main

    argv = list(args.files) + ["--metric", args.metric]
    if args.tolerance is not None:
        argv += ["--tolerance", str(args.tolerance)]
    if args.min_runs is not None:
        argv += ["--min-runs", str(args.min_runs)]
    if args.as_json:
        argv.append("--json")
    return watch_main(argv)


def _build_service(args: argparse.Namespace):
    """Shared serve-sim/loadgen setup: corpus -> system -> service parts."""
    from repro.service import make_tenants, query_pool

    lines = read_log_lines(args.log)
    tenants = make_tenants(
        args.tenants,
        skew=args.skew,
        queue_limit=args.queue_limit,
    )
    pool = query_pool(lines, max_queries=args.pool, seed=args.seed)

    def factory():
        from repro.service import QueryService

        system = MithriLogSystem(seed=args.seed)
        system.ingest(lines)
        return QueryService(
            system, tenants, max_backlog=args.max_backlog
        )

    return tenants, pool, factory


def _make_monitor(args: argparse.Namespace, journal, system=None):
    """Shared serve-sim/loadgen SLO wiring from --slo-config/--bundle-out.

    Returns ``(monitor, recorder)`` — both ``None`` when neither flag was
    given. A :class:`~repro.obs.series.MetricSampler` is attached so
    incident bundles carry metric series around the firing window.
    """
    if args.slo_config is None and args.bundle_out is None:
        return None, None
    from repro.obs.recorder import FlightRecorder
    from repro.obs.series import MetricSampler
    from repro.obs.slo import SLOMonitor, default_slos, load_slo_config

    if args.slo_config is not None:
        slos, interval = load_slo_config(args.slo_config)
    else:
        slos, interval = default_slos(), 0.005
    sampler = MetricSampler(interval_s=interval)
    monitor = SLOMonitor(slos, interval_s=interval, sampler=sampler)
    recorder = FlightRecorder(
        monitor,
        sampler=sampler,
        journal=journal,
        system=system,
        out_dir=args.bundle_out,
    )
    return monitor, recorder


def _log_slo_summary(monitor, recorder) -> None:
    """Log alert states, fired incidents and written bundle paths."""
    fired = [a for a in monitor.alerts if a.fired_at_s is not None]
    states = ", ".join(
        f"{slo.name}={monitor.state_of(slo.name).value}"
        for slo in monitor.slos
    )
    log.info(
        f"SLO monitor: {monitor.evaluations} evaluations, "
        f"{len(fired)} alert(s) fired ({states})"
    )
    for alert in fired:
        budget = monitor.budget(alert.slo)
        log.warning(
            f"  alert {alert.slo}: fired at {alert.fired_at_s * 1e3:.2f} ms "
            f"sim (burn fast {alert.burn_fast_at_fire:.1f}x / slow "
            f"{alert.burn_slow_at_fire:.1f}x, budget consumed "
            f"{100 * budget['consumed_ratio']:.0f}%)"
        )
    if recorder is not None:
        for path in recorder.written:
            log.info(f"  incident artifact: {path}")


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.service import open_loop_requests

    if args.tenants <= 0:
        log.error("--tenants must be positive")
        return 2
    if args.duration <= 0:
        log.error("--duration must be positive")
        return 2
    if args.offered_qps <= 0:
        log.error("--offered-qps must be positive")
        return 2
    if not 0 <= args.max_loss <= 1:
        log.error("--max-loss must be within [0, 1]")
        return 2
    tenants, pool, factory = _build_service(args)
    requests = open_loop_requests(
        pool,
        tenants,
        offered_qps=args.offered_qps,
        duration_s=args.duration,
        seed=args.seed,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
        sample_fraction=args.sample_fraction,
    )
    service = factory()
    journal = None
    if args.journal_out is not None or args.bundle_out is not None:
        from repro.obs.journal import QueryJournal

        journal = QueryJournal(max_entries=args.journal_max_entries)
        journal.begin_window("serve-sim")
        service.journal = journal
    monitor, recorder = _make_monitor(args, journal, system=service.backend)
    if monitor is not None:
        service.monitor = monitor
    report = service.run(requests, workers=args.workers)
    counts = report.outcome_counts()
    log.info(
        f"served {report.submitted:,} requests from {len(tenants)} tenants "
        f"in {report.duration_s * 1e3:.1f} ms simulated "
        f"({report.passes} accelerator passes)"
    )
    log.info(
        f"  ok {counts['ok']:,}  rejected {counts['rejected']:,}  "
        f"shed {counts['shed']:,}  timed out {counts['timed_out']:,}  "
        f"approximated {counts['approximated']:,}"
    )
    log.info(
        f"  goodput {report.goodput_qps:,.0f} q/s, "
        f"p50 {report.latency_percentile_s(50) * 1e3:.2f} ms, "
        f"p99 {report.latency_percentile_s(99) * 1e3:.2f} ms, "
        f"loss rate {100 * report.shed_rate:.1f}%"
    )
    if not report.conserved():
        log.error("outcome conservation violated (this is a bug)")
        return 1
    if monitor is not None:
        _log_slo_summary(monitor, recorder)
    if journal is not None and args.journal_out is not None:
        journal.write(args.journal_out)
        evicted = f" ({journal.evicted:,} evicted)" if journal.evicted else ""
        log.info(
            f"query journal ({len(journal.records):,} records{evicted}) "
            f"written to {args.journal_out}"
        )
    if args.as_json:
        payload = {
            "submitted": report.submitted,
            "outcomes": counts,
            "goodput_qps": report.goodput_qps,
            "p50_ms": report.latency_percentile_s(50) * 1e3,
            "p99_ms": report.latency_percentile_s(99) * 1e3,
            "shed_rate": report.shed_rate,
            "passes": report.passes,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    if report.shed_rate > args.max_loss:
        log.warning(
            f"loss rate {100 * report.shed_rate:.1f}% exceeds "
            f"--max-loss {100 * args.max_loss:.1f}% — service degraded"
        )
        return 1
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service import estimate_capacity, run_sweep

    if args.tenants <= 0:
        log.error("--tenants must be positive")
        return 2
    if args.duration <= 0:
        log.error("--duration must be positive")
        return 2
    try:
        multiples = [float(m) for m in args.multiples.split(",") if m]
    except ValueError:
        log.error(f"--multiples must be comma-separated numbers, got {args.multiples!r}")
        return 2
    if not multiples or any(m <= 0 for m in multiples):
        log.error("--multiples needs at least one positive value")
        return 2
    tenants, pool, factory = _build_service(args)
    capacity = estimate_capacity(factory, pool, tenants, seed=args.seed)
    log.info(f"measured capacity: {capacity:,.0f} q/s (simulated)")
    journal = None
    if args.journal_out is not None or args.bundle_out is not None:
        from repro.obs.journal import QueryJournal

        journal = QueryJournal(max_entries=args.journal_max_entries)
    monitor, recorder = _make_monitor(args, journal)
    points = run_sweep(
        factory,
        pool,
        tenants,
        capacity_qps=capacity,
        load_multiples=multiples,
        duration_s=args.duration,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
        seed=args.seed,
        workers=args.workers,
        journal=journal,
        monitor=monitor,
        sample_fraction=args.sample_fraction,
    )
    if monitor is not None:
        _log_slo_summary(monitor, recorder)
    if journal is not None and args.journal_out is not None:
        journal.write(args.journal_out)
        evicted = f" ({journal.evicted:,} evicted)" if journal.evicted else ""
        log.info(
            f"query journal ({len(journal.records):,} records{evicted}, "
            f"{len(multiples)} windows) written to {args.journal_out}"
        )
    log.info("  load   offered     goodput   p50 ms   p99 ms   loss   approx")
    for point in points:
        log.info(
            f"  x{point.load_multiple:<5g}{point.offered_qps:>8,.0f}"
            f"{point.goodput_qps:>12,.0f}{point.p50_ms:>9.2f}"
            f"{point.p99_ms:>9.2f}{100 * point.shed_rate:>6.1f}%"
            f"{point.approximated:>8,}"
        )
    if args.out is not None:
        Path(args.out).write_text(
            json.dumps([p.record() for p in points], indent=2) + "\n"
        )
        log.info(f"sweep records written to {args.out}")
    if args.p99_budget_ms is not None:
        worst = max(point.p99_ms for point in points)
        if worst > args.p99_budget_ms:
            log.warning(
                f"worst p99 {worst:.2f} ms exceeds budget "
                f"{args.p99_budget_ms:.2f} ms — latency degraded"
            )
            return 1
    return 0


def _cmd_workload_mine(args: argparse.Namespace) -> int:
    from repro.analytics.workload import drift, mine
    from repro.obs.journal import load_journal

    journal = load_journal(args.journal)
    if not journal.conserved():
        log.error(f"{args.journal}: journal violates outcome conservation")
        return 1
    profile = mine(journal, window=args.window)
    if profile.records == 0:
        log.error(
            f"{args.journal}: no records"
            + (f" in window {args.window!r}" if args.window else "")
        )
        return 1
    total = profile.total
    log.info(
        f"{profile.records:,} records over {profile.duration_s * 1e3:.1f} ms "
        f"simulated ({len(journal.windows())} windows, "
        f"{len(profile.templates)} templates)"
    )
    log.info(
        f"  goodput {profile.goodput_qps:,.0f} q/s, p50 {total.p50_ms:.2f} ms, "
        f"p99 {total.p99_ms:.2f} ms, loss {100 * total.loss_rate:.1f}%"
    )
    log.info("  hot templates:")
    for entry in profile.hot_templates(args.top):
        log.info(
            f"    {entry['template']}  n={entry['count']:<5,} "
            f"share={100 * entry['share']:4.1f}%  p99={entry['p99_ms']:.2f} ms  "
            f"{entry['query'][:48]}"
        )
    for dimension in ("tenant", "stage", "mode"):
        log.info(f"  by {dimension}:")
        for value, stats in sorted(profile.slices(dimension).items()):
            log.info(
                f"    {value:<12} n={stats.count:<5,} ok={stats.ok:<5,} "
                f"p99={stats.p99_ms:7.2f} ms  loss={100 * stats.loss_rate:4.1f}%"
            )
    if args.drift_windows is not None:
        names = [w for w in args.drift_windows.split(",") if w]
        if len(names) != 2:
            log.error("--drift-windows needs exactly two window labels")
            return 2
        report = drift(mine(journal, window=names[0]), mine(journal, window=names[1]))
        log.info(
            f"  drift {names[0]} -> {names[1]}: L1 {report.l1_share_distance:.4f} "
            f"({'DRIFTED' if report.drifted else 'stable'}), "
            f"{len(report.emerged)} emerged, {len(report.vanished)} vanished"
        )
    if args.as_json:
        print(json.dumps(profile.to_dict(args.top), indent=1, sort_keys=True))
    if args.out is not None:
        Path(args.out).write_text(
            json.dumps(profile.to_dict(args.top), indent=1, sort_keys=True) + "\n"
        )
        log.info(f"workload profile written to {args.out}")
    return 0


def _cmd_workload_report(args: argparse.Namespace) -> int:
    from repro.analytics.workload import mine
    from repro.obs.journal import load_journal
    from repro.obs.report import build_ab_report

    journal_a = load_journal(args.journal_a)
    journal_b = (
        journal_a if args.journal_b is None else load_journal(args.journal_b)
    )
    if args.journal_b is None and args.window_a is None and args.window_b is None:
        log.error(
            "one journal and no windows: nothing to compare "
            "(pass --journal-b, or --window-a/--window-b)"
        )
        return 2
    profile_a = mine(journal_a, window=args.window_a)
    profile_b = mine(journal_b, window=args.window_b)
    if profile_a.records == 0 or profile_b.records == 0:
        log.error("one side of the comparison has no records")
        return 1
    report = build_ab_report(
        profile_a,
        profile_b,
        label_a=args.label_a,
        label_b=args.label_b,
        threshold=args.threshold,
    )
    sys.stdout.write(report.render_markdown(top=args.top))
    if args.out is not None:
        report.write_json(args.out)
        log.info(f"A/B report JSON written to {args.out}")
    if args.md_out is not None:
        report.write_markdown(args.md_out, top=args.top)
        log.info(f"A/B report markdown written to {args.md_out}")
    hidden = report.hidden_regressions
    if hidden:
        log.warning(
            f"{len(hidden)} per-slice regressions hidden by the aggregate win"
        )
        if args.fail_on_hidden:
            return 1
    return 0


def _cmd_slo_check(args: argparse.Namespace) -> int:
    from repro.obs.journal import JournalError, load_journal
    from repro.obs.slo import SLOError, load_slo_config, replay_journal
    from repro.obs.slo import SLOMonitor

    try:
        slos, interval = load_slo_config(args.config)
    except SLOError as exc:
        log.error(str(exc))
        return 1
    log.info(
        f"{args.config}: valid SLO config — {len(slos)} objective(s), "
        f"check interval {interval * 1e3:.1f} ms sim"
    )
    for slo in slos:
        threshold = (
            f", latency <= {slo.latency_threshold_s * 1e3:.1f} ms"
            if slo.latency_threshold_s is not None
            else ""
        )
        log.info(
            f"  {slo.name}: {slo.objective} target {slo.target} "
            f"(tenant {slo.tenant}{threshold}, burn > {slo.burn_threshold}x "
            f"over {slo.fast_window_s * 1e3:g}/{slo.slow_window_s * 1e3:g} ms)"
        )
    fired = []
    if args.journal is not None:
        try:
            journal = load_journal(args.journal)
        except JournalError as exc:
            log.error(str(exc))
            return 1
        monitor = SLOMonitor(slos, interval_s=interval)
        replay_journal(monitor, journal)
        fired = [a for a in monitor.alerts if a.fired_at_s is not None]
        _log_slo_summary(monitor, None)
        if args.as_json:
            print(json.dumps(monitor.to_dict(), indent=1, sort_keys=True))
    if fired and args.fail_on_alert:
        return 1
    return 0


def _cmd_slo_watch(args: argparse.Namespace) -> int:
    from repro.obs.journal import JournalError, load_journal
    from repro.obs.recorder import FlightRecorder
    from repro.obs.slo import (
        SLOError,
        SLOMonitor,
        default_slos,
        load_slo_config,
        replay_journal,
    )

    try:
        if args.config is not None:
            slos, interval = load_slo_config(args.config)
        else:
            slos, interval = default_slos(), 0.005
    except SLOError as exc:
        log.error(str(exc))
        return 1
    try:
        journal = load_journal(args.journal)
    except JournalError as exc:
        log.error(str(exc))
        return 1
    monitor = SLOMonitor(slos, interval_s=interval)
    recorder = FlightRecorder(
        monitor,
        journal=journal,
        out_dir=args.bundle_out,
        lookback_s=args.lookback_s,
    )
    replay_journal(monitor, journal)
    log.info(
        f"replayed {len(journal.records):,} journal records through "
        f"{len(slos)} SLO(s)"
    )
    for entry in monitor.timeline():
        log.info(
            f"  {entry['t_s'] * 1e3:9.2f} ms  {entry['slo']}: "
            f"{entry['from']} -> {entry['to']}"
        )
    fired = [a for a in monitor.alerts if a.fired_at_s is not None]
    _log_slo_summary(monitor, recorder)
    if args.as_json:
        print(json.dumps(monitor.to_dict(), indent=1, sort_keys=True))
    return 1 if fired else 0


def _cmd_stream_register(args: argparse.Namespace) -> int:
    from repro.stream import (
        StandingQuery,
        Threshold,
        WindowSpec,
        build_stream_config,
        load_stream_config,
    )

    window = WindowSpec(kind=args.window, width_s=args.width_ms / 1e3)
    threshold = None
    if args.threshold is not None:
        threshold = Threshold(
            value=args.threshold,
            aggregate=args.aggregate,
            op=args.op,
        )
    standing = StandingQuery(
        name=args.name,
        query=parse_query(args.expression),
        window=window,
        threshold=threshold,
    )
    queries = []
    interval = args.check_interval_ms / 1e3
    out = Path(args.out)
    if out.exists():
        queries, interval = load_stream_config(out)
        if any(q.name == args.name for q in queries):
            log.error(f"{out}: a standing query named {args.name!r} exists")
            return 1
    queries.append(standing)
    payload = build_stream_config(queries, check_interval_s=interval)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    alert = (
        f", alert when {threshold.aggregate} {threshold.op} "
        f"{threshold.value:g}"
        if threshold is not None
        else ""
    )
    log.info(
        f"registered {args.name!r}: {args.expression!r} over a "
        f"{window.kind} {window.width_s * 1e3:g} ms window{alert}"
    )
    log.info(f"stream config ({len(queries)} queries) written to {out}")
    return 0


def _cmd_stream_status(args: argparse.Namespace) -> int:
    from repro.stream import (
        StandingQueryRegistry,
        load_stream_config,
        validate_stream_status,
    )
    from repro.system.streaming import StreamingIngestor

    queries, interval = load_stream_config(args.config)
    lines = read_log_lines(args.log)
    system = MithriLogSystem(seed=args.seed)
    ingestor = StreamingIngestor(system, batch_lines=args.batch_lines)
    registry = StandingQueryRegistry(system, interval_s=interval)
    for standing in queries:
        registry.register(standing)
    registry.attach(ingestor)
    recorder = None
    if args.bundle_out is not None:
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder(
            registry.monitor, system=system, out_dir=args.bundle_out
        )
    with ingestor:
        for line in lines:
            ingestor.append(line)
    payload = registry.status_payload()
    problems = validate_stream_status(payload)
    if problems:
        log.error(f"status snapshot invalid: {'; '.join(problems)}")
        return 1
    firing = []
    for entry in payload["queries"]:
        name = entry["definition"]["name"]
        state = entry["alert_state"]
        window_state = entry["window_state"]
        values = registry.aggregator(name).values(system.clock.now)
        log.info(
            f"  {name}: {state}  "
            f"count={values['count']:g} "
            f"rate={values['rate']:g}/s "
            f"distinct={values['distinct_templates']:g} "
            f"({window_state['evaluations']} evaluations, "
            f"{window_state['matches_total']:,} matches)"
        )
        if state == "firing":
            firing.append(name)
    if recorder is not None:
        for path in recorder.written:
            log.info(f"  incident artifact: {path}")
    if args.out is not None:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        log.info(f"stream status written to {args.out}")
    if firing:
        log.warning(f"{len(firing)} standing quer(ies) firing: {firing}")
        return 1 if args.fail_on_alert else 0
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.compression import (
        GzipCompressor,
        LZ4LikeCompressor,
        LZAHCompressor,
        LZRW1Compressor,
        SnappyLikeCompressor,
        compression_ratio,
    )

    data = Path(args.log).read_bytes()
    log.info(f"{args.log}: {len(data) / 1e6:.2f} MB")
    for codec in (
        LZAHCompressor(),
        LZRW1Compressor(),
        LZ4LikeCompressor(),
        SnappyLikeCompressor(),
        GzipCompressor(),
    ):
        log.info(f"  {codec.name:<6} {compression_ratio(codec, data):6.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MithriLog reproduction: near-storage log analytics",
    )
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed")
    volume = parser.add_mutually_exclusive_group()
    volume.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress reports; only warnings, errors and payload output",
    )
    volume.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print debug diagnostics (phase breakdowns)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic HPC4-like log file")
    p.add_argument("--dataset", choices=sorted(DATASET_SPECS), required=True)
    p.add_argument("--lines", type=int, required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("ingest", help="ingest a log file into a store directory")
    p.add_argument("--log", required=True)
    p.add_argument("--store", required=True)
    p.add_argument(
        "--timestamps",
        action="store_true",
        help="extract per-line epochs (HPC4 column 2) for time-bounded queries",
    )
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser("query", help="run a boolean token query against a store")
    p.add_argument("--store", required=True)
    p.add_argument("expression", help='e.g. \'"Failed" AND NOT "pbs_mom:"\'')
    p.add_argument("--no-index", action="store_true", help="force a full scan")
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--since", type=float, help="epoch lower bound (snapshots)")
    p.add_argument("--until", type=float, help="epoch upper bound (snapshots)")
    p.add_argument(
        "--stop-after", type=int,
        help="cancel the scan after this many matches (top-k)",
    )
    p.add_argument(
        "--newest-first", action="store_true",
        help="visit pages newest-first (tail exploration)",
    )
    p.add_argument(
        "--aggregate", action="store_true",
        help="print a summary (top hosts/fields, rate) instead of lines",
    )
    p.add_argument(
        "--explain", action="store_true",
        help="print the planner's decision instead of executing",
    )
    p.add_argument(
        "--analyze", action="store_true",
        help="attach an EXPLAIN ANALYZE report to the results",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="parallelise the scan over this many processes "
        "(results are identical at any worker count)",
    )
    p.add_argument(
        "--sample-fraction", type=float, default=None,
        help="approximate scan: read only this seeded fraction of "
        "candidate pages (0 < f < 1) and report a match estimate with "
        "a confidence interval",
    )
    p.add_argument(
        "--sample-seed", type=int, default=0,
        help="seed for --sample-fraction page selection (independent of "
        "the global --seed, which must match the store's ingest seed)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "explain",
        help="show a query's plan tree (EXPLAIN / EXPLAIN ANALYZE)",
    )
    p.add_argument("--store", required=True)
    p.add_argument("expression", help='e.g. \'"Failed" AND NOT "pbs_mom:"\'')
    p.add_argument(
        "--analyze", action="store_true",
        help="execute the query and report actual times, utilization "
        "and the bottleneck (plain EXPLAIN touches no storage)",
    )
    p.add_argument("--no-index", action="store_true", help="force a full scan")
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the analyzed scan (the report's "
        "canonical content is identical at any worker count)",
    )
    p.add_argument(
        "--format", choices=("tree", "json"), default="tree",
        help="human plan tree or the full JSON report",
    )
    p.add_argument("--out", help="also write the JSON report to this file")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("tag", help="tag a log's lines with FT-tree template ids")
    p.add_argument("--log", required=True)
    p.add_argument("--top", type=int, default=8)
    p.set_defaults(func=_cmd_tag)

    p = sub.add_parser("templates", help="extract FT-tree templates from a log")
    p.add_argument("--log", required=True)
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--depth", type=int, default=10)
    p.add_argument("--prune", type=int, default=32)
    p.set_defaults(func=_cmd_templates)

    p = sub.add_parser("stats", help="describe a store directory")
    p.add_argument("--store", required=True)
    p.add_argument(
        "--format", choices=("human", "prometheus", "json"), default="human",
        help="human report, Prometheus exposition text, or a JSON snapshot",
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "trace",
        help="run a query with span tracing, write Chrome trace JSON",
    )
    p.add_argument("--store", required=True)
    p.add_argument("expression", help='e.g. \'"Failed" AND NOT "pbs_mom:"\'')
    p.add_argument("--out", default="trace.json", help="trace file to write")
    p.add_argument("--no-index", action="store_true", help="force a full scan")
    p.add_argument(
        "--utilization", action="store_true",
        help="also export per-resource occupancy counter tracks",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "watch-perf",
        help="fail when a benchmark trajectory file shows a perf regression",
    )
    p.add_argument(
        "files", nargs="+",
        help="trajectory JSON files (concatenated in order, e.g. the "
        "committed baseline plus a fresh run's artifact)",
    )
    p.add_argument("--metric", default="speedup")
    p.add_argument("--tolerance", type=float, default=None)
    p.add_argument("--min-runs", type=int, default=None)
    p.add_argument("--json", action="store_true", dest="as_json")
    p.set_defaults(func=_cmd_watch_perf)

    p = sub.add_parser("compress", help="Table 5 codec comparison on a log file")
    p.add_argument("--log", required=True)
    p.set_defaults(func=_cmd_compress)

    def _service_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--log", required=True, help="corpus to ingest and query")
        p.add_argument("--tenants", type=int, default=3)
        p.add_argument("--skew", type=float, default=1.2,
                       help="Zipf exponent for tenant traffic shares")
        p.add_argument("--pool", type=int, default=16,
                       help="template queries in the workload pool")
        p.add_argument("--queue-limit", type=int, default=64,
                       help="per-tenant admission queue bound")
        p.add_argument("--max-backlog", type=int, default=32,
                       help="global backlog before load shedding engages")
        p.add_argument("--duration", type=float, default=0.3,
                       help="simulated seconds of offered traffic")
        p.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline (simulated milliseconds)")
        p.add_argument("--workers", type=int, default=1,
                       help="scan worker processes (outcomes are identical "
                       "at any worker count)")
        p.add_argument("--journal-out", default=None,
                       help="write the run's query journal (JSON) to this "
                       "file for `repro workload mine`/`report`")
        p.add_argument("--journal-max-entries", type=int, default=None,
                       help="ring-buffer bound on retained journal records; "
                       "older records are evicted but aggregate per-tenant "
                       "tallies stay exact")
        p.add_argument("--slo-config", default=None,
                       help="JSON SLO config (kind mithrilog_slo_config) "
                       "enabling live burn-rate alerting during the run")
        p.add_argument("--bundle-out", default=None,
                       help="directory where the flight recorder writes an "
                       "incident bundle (JSON + markdown) each time an "
                       "alert fires; implies default SLOs when no "
                       "--slo-config is given")
        p.add_argument("--sample-fraction", type=float, default=None,
                       help="opt the generated traffic into the approximate "
                       "admission class: under overload requests are "
                       "degraded to a sampled scan at this page fraction "
                       "(0 < f < 1) instead of being shed")

    p = sub.add_parser(
        "serve-sim",
        help="serve one simulated multi-tenant session; exit 1 when loss "
        "exceeds --max-loss",
    )
    _service_args(p)
    p.add_argument("--offered-qps", type=float, default=500.0,
                   help="open-loop Poisson arrival rate")
    p.add_argument("--max-loss", type=float, default=1.0,
                   help="degraded threshold on the shed+rejected+timed-out "
                   "fraction (exit 1 above it)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="also print a JSON summary to stdout")
    p.set_defaults(func=_cmd_serve_sim)

    p = sub.add_parser(
        "loadgen",
        help="sweep offered load against a fresh service; exit 1 when p99 "
        "exceeds --p99-budget-ms",
    )
    _service_args(p)
    p.add_argument("--multiples", default="0.5,1,2,4",
                   help="comma-separated offered-load multiples of capacity")
    p.add_argument("--p99-budget-ms", type=float, default=None,
                   help="latency budget the worst sweep point must meet")
    p.add_argument("--out", default=None,
                   help="write sweep records (watch-perf format) to this file")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "workload",
        help="mine query journals and build A/B workload reports",
    )
    wsub = p.add_subparsers(dest="workload_command", required=True)

    w = wsub.add_parser(
        "mine",
        help="slice a query journal: hot templates, per-tenant/stage "
        "stats, optional drift between windows",
    )
    w.add_argument("--journal", required=True, help="journal JSON file")
    w.add_argument("--window", default=None,
                   help="mine only this journal window (default: all records)")
    w.add_argument("--top", type=int, default=8,
                   help="hot templates to show")
    w.add_argument("--drift-windows", default=None, metavar="A,B",
                   help="also report drift between two windows")
    w.add_argument("--json", action="store_true", dest="as_json",
                   help="print the profile JSON to stdout")
    w.add_argument("--out", default=None,
                   help="write the profile JSON to this file")
    w.set_defaults(func=_cmd_workload_mine)

    w = wsub.add_parser(
        "report",
        help="diff two journals (or two windows) slice by slice; flags "
        "regressions an aggregate win would hide",
    )
    w.add_argument("--journal-a", required=True,
                   help="baseline journal JSON file")
    w.add_argument("--journal-b", default=None,
                   help="candidate journal (default: same file as A, "
                   "compare two windows instead)")
    w.add_argument("--window-a", default=None, help="window to mine from A")
    w.add_argument("--window-b", default=None, help="window to mine from B")
    w.add_argument("--label-a", default="baseline")
    w.add_argument("--label-b", default="candidate")
    w.add_argument("--threshold", type=float, default=0.2,
                   help="relative change that counts as material (0.2 = 20%%)")
    w.add_argument("--top", type=int, default=12,
                   help="slices to show in the markdown tables")
    w.add_argument("--out", default=None,
                   help="write the report JSON to this file")
    w.add_argument("--md-out", default=None,
                   help="write the rendered markdown to this file")
    w.add_argument("--fail-on-hidden", action="store_true",
                   help="exit 1 when any hidden per-slice regression is found")
    w.set_defaults(func=_cmd_workload_report)

    p = sub.add_parser(
        "slo",
        help="validate SLO configs and replay journals through the "
        "burn-rate alert engine",
    )
    ssub = p.add_subparsers(dest="slo_command", required=True)

    s = ssub.add_parser(
        "check",
        help="validate an SLO config; optionally replay a journal "
        "against it",
    )
    s.add_argument("--config", required=True,
                   help="SLO config JSON (kind mithrilog_slo_config)")
    s.add_argument("--journal", default=None,
                   help="replay this query journal through the config's SLOs")
    s.add_argument("--fail-on-alert", action="store_true",
                   help="exit 1 when the replay fires any alert")
    s.add_argument("--json", action="store_true", dest="as_json",
                   help="print the monitor summary JSON to stdout")
    s.set_defaults(func=_cmd_slo_check)

    s = ssub.add_parser(
        "watch",
        help="replay a journal through the alert engine, print the "
        "transition timeline, write incident bundles; exit 1 when any "
        "alert fired",
    )
    s.add_argument("--journal", required=True, help="journal JSON file")
    s.add_argument("--config", default=None,
                   help="SLO config JSON (default: stock objectives)")
    s.add_argument("--bundle-out", default=None,
                   help="directory for incident bundles (JSON + markdown)")
    s.add_argument("--lookback-s", type=float, default=0.25,
                   help="simulated seconds of evidence captured before "
                   "an alert fires")
    s.add_argument("--json", action="store_true", dest="as_json",
                   help="print the monitor summary JSON to stdout")
    s.set_defaults(func=_cmd_slo_watch)

    p = sub.add_parser(
        "stream",
        help="register standing queries and evaluate them over a log "
        "stream (windowed aggregates + threshold alerts)",
    )
    tsub = p.add_subparsers(dest="stream_command", required=True)

    s = tsub.add_parser(
        "register",
        help="add a standing query to a stream config file",
    )
    s.add_argument("--name", required=True,
                   help="unique standing-query name")
    s.add_argument("--expression", required=True,
                   help="query expression (same algebra as repro query)")
    s.add_argument("--window", choices=("tumbling", "sliding"),
                   default="tumbling", help="window kind")
    s.add_argument("--width-ms", type=float, default=1000.0,
                   help="window width in simulated milliseconds")
    s.add_argument("--aggregate",
                   choices=("count", "rate", "distinct_templates"),
                   default="count",
                   help="window aggregate the threshold tests")
    s.add_argument("--threshold", type=float, default=None,
                   help="alert when the aggregate crosses this value")
    s.add_argument("--op", choices=(">=", "<="), default=">=",
                   help="breach direction for --threshold")
    s.add_argument("--check-interval-ms", type=float, default=5.0,
                   help="monitor evaluation interval for a new config")
    s.add_argument("--out", default="stream.json",
                   help="stream config file (appended to when it exists)")
    s.set_defaults(func=_cmd_stream_register)

    s = tsub.add_parser(
        "status",
        help="stream a log through the registered standing queries and "
        "report window values and alert states",
    )
    s.add_argument("--config", required=True,
                   help="stream config JSON (kind mithrilog_stream_config)")
    s.add_argument("--log", required=True, help="log file to stream")
    s.add_argument("--seed", type=int, default=0,
                   help="simulation seed")
    s.add_argument("--batch-lines", type=int, default=512,
                   help="ingest flush batch size (lines)")
    s.add_argument("--out", default=None,
                   help="write the status snapshot JSON here")
    s.add_argument("--bundle-out", default=None,
                   help="directory for incident bundles when alerts fire")
    s.add_argument("--fail-on-alert", action="store_true",
                   help="exit 1 when any standing query is firing")
    s.set_defaults(func=_cmd_stream_status)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.quiet:
        log.quiet()
    elif args.verbose:
        log.verbose()
    else:
        log.set_level("info")  # reset: main() may be called repeatedly
    try:
        return args.func(args)
    except (MithriLogError, TraceError) as exc:
        log.error(str(exc))
        return 1
    except FileNotFoundError as exc:
        log.error(str(exc))
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
