"""Hardware modelling substrate.

The FPGA itself is out of reach for a Python reproduction, so this package
models the three things the paper derives from it:

- :mod:`repro.hw.resources` — LUT/BRAM accounting (Tables 2 and 4, plus the
  HARE comparison arithmetic of Section 7.4.3),
- :mod:`repro.hw.perf` — cycle-approximate pipeline throughput (Figure 14),
- :mod:`repro.hw.power` — component power breakdown (Table 8).
"""

from repro.hw.power import PowerBreakdown, mithrilog_power, software_power
from repro.hw.resources import (
    VC707,
    CompressionIP,
    FpgaPart,
    ModuleResources,
    ResourceReport,
    compression_efficiency_table,
    hare_comparison,
    mithrilog_resource_table,
)

__all__ = [
    "VC707",
    "CompressionIP",
    "FpgaPart",
    "ModuleResources",
    "PowerBreakdown",
    "ResourceReport",
    "compression_efficiency_table",
    "hare_comparison",
    "mithrilog_power",
    "mithrilog_resource_table",
    "software_power",
]
