"""FPGA resource accounting.

Reproduces the arithmetic behind Table 2 (MithriLog module utilization on a
VC707), Table 4 (compression accelerator bandwidth per KLUT), and the
Section 7.4.3 back-of-the-envelope comparison against HARE+LZRW.

The per-module LUT/BRAM figures are the paper's published synthesis
results; everything derived (percentages, GB/s/KLUT, LUTs per GB/s) is
computed, so the benches regenerate the tables rather than hard-coding
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import (
    CLOCK_HZ,
    DATAPATH_BYTES,
    HASH_FILTERS_PER_PIPELINE,
    TOKENIZERS_PER_PIPELINE,
)


@dataclass(frozen=True)
class FpgaPart:
    """An FPGA device's resource provisioning."""

    name: str
    luts: int
    ramb36: int
    ramb18: int


#: Xilinx VC707 development board's Virtex-7 XC7VX485T.
VC707 = FpgaPart(name="VC707 (XC7VX485T)", luts=303_600, ramb36=1_030, ramb18=2_060)

#: Samsung SmartSSD's KU15P, quoted by the paper as comparable to 2x Virtex-7.
KU15P = FpgaPart(name="SmartSSD (KU15P)", luts=522_720, ramb36=984, ramb18=1_968)


@dataclass(frozen=True)
class ModuleResources:
    """Synthesis resource usage of one hardware module."""

    name: str
    luts: int
    ramb36: int
    ramb18: int

    def scaled(self, count: int, name: str) -> "ModuleResources":
        """Resource usage of ``count`` replicated instances."""
        return ModuleResources(
            name=name,
            luts=self.luts * count,
            ramb36=self.ramb36 * count,
            ramb18=self.ramb18 * count,
        )


#: Published per-module synthesis results (Table 2, "1x" rows).
DECOMPRESSOR = ModuleResources(name="1x Decompr.", luts=4_245, ramb36=4, ramb18=0)
TOKENIZER = ModuleResources(name="1x Tokenizer", luts=1_134, ramb36=0, ramb18=0)
HASH_FILTER = ModuleResources(name="1x Filter", luts=30_334, ramb36=10, ramb18=2)
PIPELINE = ModuleResources(name="1x Pipeline", luts=61_698, ramb36=66, ramb18=18)
PROTOTYPE_TOTAL = ModuleResources(name="Total", luts=225_793, ramb36=430, ramb18=43)


@dataclass(frozen=True)
class ResourceReport:
    """One row of a utilization table: absolute counts plus percentages."""

    module: ModuleResources
    part: FpgaPart

    @property
    def lut_fraction(self) -> float:
        return self.module.luts / self.part.luts

    @property
    def ramb36_fraction(self) -> float:
        return self.module.ramb36 / self.part.ramb36

    @property
    def ramb18_fraction(self) -> float:
        return self.module.ramb18 / self.part.ramb18

    def row(self) -> str:
        """Render as a Table 2-style text row."""
        return (
            f"{self.module.name:<14}"
            f"{self.module.luts:>8,} ({self.lut_fraction:>5.1%})  "
            f"{self.module.ramb36:>4} ({self.ramb36_fraction:>5.1%})  "
            f"{self.module.ramb18:>4} ({self.ramb18_fraction:>5.1%})"
        )


def pipeline_component_sum() -> ModuleResources:
    """Sum of one pipeline's published sub-modules.

    One pipeline holds one decompressor, eight tokenizers and two hash
    filters. The naive component sum differs from the published
    61,698-LUT whole-pipeline figure because synthesis optimises across
    module boundaries (shared logic is deduplicated when the pipeline is
    compiled as one unit); the tests check the two agree to ~25%.
    """
    luts = (
        DECOMPRESSOR.luts
        + TOKENIZERS_PER_PIPELINE * TOKENIZER.luts
        + HASH_FILTERS_PER_PIPELINE * HASH_FILTER.luts
    )
    ramb36 = (
        DECOMPRESSOR.ramb36
        + TOKENIZERS_PER_PIPELINE * TOKENIZER.ramb36
        + HASH_FILTERS_PER_PIPELINE * HASH_FILTER.ramb36
    )
    ramb18 = (
        DECOMPRESSOR.ramb18
        + TOKENIZERS_PER_PIPELINE * TOKENIZER.ramb18
        + HASH_FILTERS_PER_PIPELINE * HASH_FILTER.ramb18
    )
    return ModuleResources(
        name="Pipeline components", luts=luts, ramb36=ramb36, ramb18=ramb18
    )


def mithrilog_resource_table(part: FpgaPart = VC707) -> list[ResourceReport]:
    """Regenerate Table 2 as a list of reports against ``part``."""
    return [
        ResourceReport(module=m, part=part)
        for m in (DECOMPRESSOR, TOKENIZER, HASH_FILTER, PIPELINE, PROTOTYPE_TOTAL)
    ]


# ---------------------------------------------------------------------------
# Table 4: compression accelerator resource efficiency
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompressionIP:
    """An FPGA compression core's published throughput and area."""

    name: str
    gbytes_per_sec: float
    kluts: float
    source: str

    @property
    def gbps_per_klut(self) -> float:
        """Bandwidth per thousand LUTs — the paper's efficiency metric."""
        return self.gbytes_per_sec / self.kluts


#: LZAH decompressor: one word (16 B) per cycle at 200 MHz, ~4 KLUTs.
LZAH_IP = CompressionIP(
    name="LZAH",
    gbytes_per_sec=DATAPATH_BYTES * CLOCK_HZ / 1e9,
    kluts=4.0,
    source="This",
)

#: Published comparison points quoted in Table 4.
LZ4_IP = CompressionIP(name="LZ4", gbytes_per_sec=1.68, kluts=35.0, source="[76]")
LZRW_IP = CompressionIP(name="LZRW", gbytes_per_sec=0.175, kluts=0.64, source="[20]")
SNAPPY_IP = CompressionIP(name="Snappy", gbytes_per_sec=1.72, kluts=35.0, source="[77]")


def compression_efficiency_table() -> list[CompressionIP]:
    """Regenerate Table 4's rows (order matches the paper)."""
    return [LZ4_IP, LZRW_IP, SNAPPY_IP, LZAH_IP]


# ---------------------------------------------------------------------------
# Section 7.4.3: comparison against HARE + LZRW
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AcceleratorEfficiency:
    """LUTs needed per 1 GB/s of end-to-end (decompress+filter) bandwidth."""

    name: str
    kluts_per_gbps: float


def hare_comparison() -> tuple[AcceleratorEfficiency, AcceleratorEfficiency]:
    """Reproduce the back-of-the-envelope HARE-vs-MithriLog estimate.

    HARE reaches 0.4 GB/s of regex filtering in ~55 KLUTs; pairing each
    GB/s of it with enough LZRW decompressors gives the paper's ~145
    KLUTs/GB/s. A MithriLog pipeline filters 3.2 GB/s in 61.7 KLUTs
    (~19 KLUTs/GB/s including its decompressor).
    """
    hare_kluts, hare_gbps = 55.0, 0.4
    lzrw_kluts_per_gbps = LZRW_IP.kluts / LZRW_IP.gbytes_per_sec
    hare_total = hare_kluts / hare_gbps + lzrw_kluts_per_gbps
    pipeline_gbps = DATAPATH_BYTES * CLOCK_HZ / 1e9
    mithrilog_total = PIPELINE.luts / 1e3 / pipeline_gbps
    return (
        AcceleratorEfficiency(name="HARE + LZRW", kluts_per_gbps=hare_total),
        AcceleratorEfficiency(name="MithriLog + LZAH", kluts_per_gbps=mithrilog_total),
    )
