"""Cycle-approximate performance model of the filter engine.

Reproduces the arithmetic behind Figures 13 and 14:

- :func:`measure_tokenized_stats` measures the padding amplification of the
  tokenized datapath on real lines (Figure 13's useful-bit percentages).
- :class:`PipelineCycleModel` counts the cycles a filter pipeline spends on
  a corpus, modelling the three in-order stages the RTL has: a decompressor
  emitting one datapath word per cycle, eight 2 B/cycle tokenizers fed
  line-by-line round-robin, and two hash filters each consuming one
  tokenized word per cycle. The max over stages per round-robin group is
  what creates the paper's "imbalance between lengths of consecutive log
  lines" penalty.
- :class:`EngineThroughputModel` combines pipeline capability with the
  decompressor ceiling and the storage supply (internal bandwidth x
  compression ratio), yielding Figure 14's per-dataset effective
  throughputs including the BGL2 storage-bound case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.obs.metrics import get_registry
from repro.params import (
    DECOMPRESSOR_BYTES_PER_SEC,
    INTERNAL_BANDWIDTH,
    NUM_PIPELINES,
    PipelineParams,
)


@dataclass(frozen=True)
class TokenizedStats:
    """Measured shape of a corpus's tokenized datapath stream."""

    raw_bytes: int
    lines: int
    token_words: int
    useful_bytes: int
    datapath_bytes: int

    @property
    def tokenized_bytes(self) -> int:
        """Bytes on the tokenized datapath including zero padding."""
        return self.token_words * self.datapath_bytes

    @property
    def useful_fraction(self) -> float:
        """Figure 13's metric: non-padding share of the tokenized stream."""
        if self.token_words == 0:
            return 1.0
        return self.useful_bytes / self.tokenized_bytes

    @property
    def amplification(self) -> float:
        """Tokenized bytes per raw input byte (paper: typically ~2x)."""
        if self.raw_bytes == 0:
            return 1.0
        return self.tokenized_bytes / self.raw_bytes


def measure_tokenized_stats(
    lines: Iterable[bytes], datapath_bytes: int = 16
) -> TokenizedStats:
    """Tokenize ``lines`` and measure padding amplification.

    Uses the same token-splitting rules as the functional tokenizer
    (:func:`repro.core.tokenizer.split_tokens`) so the model and the
    functional engine cannot drift apart.
    """
    from repro.core.tokenizer import split_tokens

    raw = 0
    nlines = 0
    words = 0
    useful = 0
    for line in lines:
        nlines += 1
        raw += len(line) + 1  # count the newline the storage stream carries
        line_words = 0
        for token in split_tokens(line):
            useful += len(token)
            line_words += max(1, math.ceil(len(token) / datapath_bytes))
        words += max(1, line_words)  # token-less lines still emit one word
    stats = TokenizedStats(
        raw_bytes=raw,
        lines=nlines,
        token_words=words,
        useful_bytes=useful,
        datapath_bytes=datapath_bytes,
    )
    registry = get_registry()
    if registry is not None and stats.token_words:
        registry.gauge(
            "mithrilog_pipeline_useful_bits_ratio",
            "Non-padding share of the tokenized datapath stream (Figure 13)",
        ).set(stats.useful_fraction)
        registry.gauge(
            "mithrilog_pipeline_padding_amplification",
            "Tokenized bytes per raw input byte",
        ).set(stats.amplification)
    return stats


@dataclass(frozen=True)
class PipelineCycleCount:
    """Cycle accounting for one pipeline over a corpus."""

    cycles: int
    raw_bytes: int
    params: PipelineParams

    @property
    def bytes_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.raw_bytes / self.cycles

    @property
    def throughput_bytes_per_sec(self) -> float:
        """Decompressed-text throughput this pipeline sustains."""
        return self.bytes_per_cycle * self.params.clock_hz


class PipelineCycleModel:
    """Counts the cycles one filter pipeline needs for a list of lines."""

    def __init__(self, params: Optional[PipelineParams] = None) -> None:
        self.params = params if params is not None else PipelineParams()

    def _line_token_words(self, line: bytes) -> int:
        from repro.core.tokenizer import split_tokens

        w = self.params.datapath_bytes
        words = sum(max(1, math.ceil(len(t) / w)) for t in split_tokens(line))
        return max(1, words)  # token-less lines still emit one flagged word

    def count_cycles(self, lines: Sequence[bytes]) -> PipelineCycleCount:
        """Simulate round-robin scatter/gather over the tokenizer array.

        Lines are processed in groups of ``tokenizers``; within a group all
        stages run concurrently, and the group completes when its slowest
        stage does:

        - decompressor: one datapath word per cycle over the group's raw
          bytes (it feeds all tokenizers),
        - each tokenizer: ``bytes_per_cycle`` over its assigned line,
        - each hash filter: one tokenized word per cycle over the lines of
          the tokenizer sub-group it gathers from.
        """
        p = self.params
        per_filter = p.tokenizers // p.hash_filters
        total_cycles = 0
        raw_total = 0
        for base in range(0, len(lines), p.tokenizers):
            group = lines[base : base + p.tokenizers]
            group_raw = sum(len(line) + 1 for line in group)
            raw_total += group_raw
            decomp_cycles = math.ceil(group_raw / p.datapath_bytes)
            tok_cycles = max(
                math.ceil((len(line) + 1) / p.tokenizer_bytes_per_cycle)
                for line in group
            )
            filter_cycles = 0
            for f in range(p.hash_filters):
                assigned = group[f * per_filter : (f + 1) * per_filter]
                words = sum(self._line_token_words(line) for line in assigned)
                filter_cycles = max(filter_cycles, words)
            total_cycles += max(decomp_cycles, tok_cycles, filter_cycles)
        registry = get_registry()
        if registry is not None and total_cycles:
            registry.counter(
                "mithrilog_pipeline_cycles_total",
                "Filter pipeline cycles modelled",
            ).inc(total_cycles)
        return PipelineCycleCount(
            cycles=total_cycles, raw_bytes=raw_total, params=p
        )


@dataclass(frozen=True)
class EngineThroughput:
    """Figure 14 datapoint: what bounds the engine and what it achieves."""

    dataset: str
    pipeline_capability: float
    decompressor_ceiling: float
    storage_supply: float

    @property
    def effective_bytes_per_sec(self) -> float:
        """Achieved decompressed-text throughput: min of the three bounds."""
        return min(
            self.pipeline_capability, self.decompressor_ceiling, self.storage_supply
        )

    @property
    def bound_by(self) -> str:
        """Which stage limits this dataset ('filter', 'decompressor', 'storage')."""
        bounds = {
            "filter": self.pipeline_capability,
            "decompressor": self.decompressor_ceiling,
            "storage": self.storage_supply,
        }
        return min(bounds, key=bounds.get)


class EngineThroughputModel:
    """Combines pipeline, decompressor and storage bounds (Figure 14)."""

    def __init__(
        self,
        num_pipelines: int = NUM_PIPELINES,
        internal_bandwidth: int = INTERNAL_BANDWIDTH,
        decompressor_bytes_per_sec: int = DECOMPRESSOR_BYTES_PER_SEC,
        params: Optional[PipelineParams] = None,
    ) -> None:
        self.num_pipelines = num_pipelines
        self.internal_bandwidth = internal_bandwidth
        self.decompressor_bytes_per_sec = decompressor_bytes_per_sec
        self.cycle_model = PipelineCycleModel(params)

    def evaluate(
        self, dataset: str, lines: Sequence[bytes], compression_ratio: float
    ) -> EngineThroughput:
        """Model the engine's effective throughput on a corpus.

        ``compression_ratio`` is the dataset's LZAH ratio: the storage's
        internal bandwidth delivers compressed pages, so the decompressed
        supply is ``internal_bandwidth * ratio``.
        """
        if compression_ratio <= 0:
            raise ValueError("compression_ratio must be positive")
        count = self.cycle_model.count_cycles(lines)
        return EngineThroughput(
            dataset=dataset,
            pipeline_capability=self.num_pipelines
            * count.throughput_bytes_per_sec,
            decompressor_ceiling=self.num_pipelines
            * self.decompressor_bytes_per_sec,
            storage_supply=self.internal_bandwidth * compression_ratio,
        )
