"""Power model (Table 8).

The paper's Table 8 is itself a partly-estimated breakdown: FPGA boards and
BlueDBM cards were metered at the wall, while the comparison machine's SSD
draw comes from Samsung's datasheet and is subtracted from the measured
total to infer CPU+memory draw. This module reproduces that arithmetic and
derives the headline claim — similar total power, order-of-magnitude higher
performance, hence order-of-magnitude better efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Measured / published component draws (watts).
VC707_BOARD_W = 18.0
BLUEDBM_CARD_W = 6.0
NUM_VC707 = 2
NUM_BLUEDBM = 4
MITHRILOG_HOST_W = 90.0

SOFTWARE_TOTAL_W = 170.0
NVME_SSD_W = 5.0  # Samsung 970 EVO Plus under load, per datasheet
NUM_COMPARISON_SSDS = 2


@dataclass(frozen=True)
class PowerBreakdown:
    """A Table 8 column: per-component draws plus the total."""

    name: str
    cpu_memory_w: float
    storage_w: float
    fpga_w: float = 0.0

    @property
    def total_w(self) -> float:
        return self.cpu_memory_w + self.storage_w + self.fpga_w

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("CPU+Memory (Watt)", self.cpu_memory_w),
            ("Total Storage (Watt)", self.storage_w),
            ("2x FPGA (Watt)", self.fpga_w),
            ("Total (Watt)", self.total_w),
        ]


def mithrilog_power() -> PowerBreakdown:
    """MithriLog platform column of Table 8."""
    return PowerBreakdown(
        name="MithriLog",
        cpu_memory_w=MITHRILOG_HOST_W,
        storage_w=NUM_BLUEDBM * BLUEDBM_CARD_W,
        fpga_w=NUM_VC707 * VC707_BOARD_W,
    )


def software_power() -> PowerBreakdown:
    """Software platform column of Table 8.

    CPU+memory is inferred by subtracting the published SSD draw from the
    measured wall total, exactly as the paper does.
    """
    storage = NUM_COMPARISON_SSDS * NVME_SSD_W
    return PowerBreakdown(
        name="Software",
        cpu_memory_w=SOFTWARE_TOTAL_W - storage,
        storage_w=storage,
        fpga_w=0.0,
    )


@dataclass(frozen=True)
class EfficiencyComparison:
    """Performance-per-watt ratio between the two platforms."""

    mithrilog: PowerBreakdown
    software: PowerBreakdown
    speedup: float

    @property
    def power_ratio(self) -> float:
        """MithriLog total power relative to software (<1 means lower)."""
        return self.mithrilog.total_w / self.software.total_w

    @property
    def efficiency_gain(self) -> float:
        """Performance-per-watt improvement: speedup / power ratio."""
        return self.speedup / self.power_ratio


def efficiency_comparison(speedup: float) -> EfficiencyComparison:
    """Combine the power model with a measured speedup.

    ``speedup`` is MithriLog's throughput improvement over the software
    system for the workload of interest (e.g. the Table 6 averages).
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return EfficiencyComparison(
        mithrilog=mithrilog_power(), software=software_power(), speedup=speedup
    )
