"""Synthetic HPC4-like log generators.

Each generator mimics one of the paper's datasets: the published line
format of that system (Blue Gene/L RAS logs for BGL2; Linux-cluster
syslog for Liberty2/Spirit2/Thunderbird), a library of message templates
modelled on the published samples, Zipf-skewed template frequencies (a
few templates dominate real logs), and per-line variable fields (node
names, PIDs, addresses, users). The properties the evaluation depends on
all emerge from this anatomy:

- FT-tree recovers a template library of the right flavour (Table 1),
- token-length distribution gives the ~50% useful-bit ratio (Figure 13),
- cross-line redundancy gives LZAH-friendly compression (Table 5),
- per-template keywords give selective and non-selective queries
  (Figures 15/16).

Generation is deterministic per (dataset, seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.datasets.schema import DATASET_SPECS

_MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]


@dataclass(frozen=True)
class MessageTemplate:
    """One log message pattern with ``{field}`` placeholders."""

    pattern: str
    source: str  # the emitting facility, e.g. 'kernel', 'sshd(pam_unix)'
    alert: str = "-"  # HPC4 alert-category tag; '-' means benign


def _zipf_weights(n: int, exponent: float = 1.1) -> list[float]:
    return [1.0 / (rank + 1) ** exponent for rank in range(n)]


class _Fields:
    """Per-line variable-field expansion."""

    def __init__(self, rng: random.Random, node: str) -> None:
        self.rng = rng
        self.node = node

    def expand(self, pattern: str) -> str:
        out = pattern
        while "{" in out:
            start = out.index("{")
            end = out.index("}", start)
            kind = out[start + 1 : end]
            out = out[:start] + self._value(kind) + out[end + 1 :]
        return out

    def _value(self, kind: str) -> str:
        rng = self.rng
        if kind == "int":
            return str(rng.randrange(0, 100000))
        if kind == "pid":
            return str(rng.randrange(100, 32768))
        if kind == "hex":
            return f"0x{rng.randrange(0, 1 << 32):08x}"
        if kind == "ip":
            return ".".join(str(rng.randrange(1, 255)) for _ in range(4))
        if kind == "user":
            return rng.choice(["root", "admin", "jsmith", "operator", "hpcuser"])
        if kind == "float":
            return f"{rng.uniform(0, 500):.2f}"
        if kind == "node":
            return self.node
        if kind == "port":
            return str(rng.randrange(1024, 65536))
        if kind == "path":
            base = rng.choice(["/var/spool", "/scratch", "/home", "/p/gb1"])
            return f"{base}/job{rng.randrange(1, 9999)}"
        raise ValueError(f"unknown field kind {kind!r}")


# ---------------------------------------------------------------------------
# Per-dataset template libraries (modelled on published HPC4 samples)
# ---------------------------------------------------------------------------

_BGL2_TEMPLATES = [
    MessageTemplate("instruction cache parity error corrected", "RAS KERNEL INFO"),
    MessageTemplate("generating core.{int}", "RAS KERNEL INFO"),
    MessageTemplate("CE sym {int}, at {hex}, mask {hex}", "RAS KERNEL INFO"),
    MessageTemplate("{int} double-hummer alignment exceptions", "RAS KERNEL INFO"),
    MessageTemplate("ciod: Error creating node map from file {path}: No such file or directory", "RAS APP FATAL", alert="APPNOMAP"),
    MessageTemplate("data TLB error interrupt", "RAS KERNEL FATAL", alert="KERNDTLB"),
    MessageTemplate("rts: kernel terminated for reason {int}", "RAS KERNEL FATAL", alert="KERNTERM"),
    MessageTemplate("ciod: LOGIN chdir({path}) failed: Permission denied", "RAS APP FATAL", alert="APPCHDIR"),
    MessageTemplate("machine check interrupt", "RAS KERNEL FATAL", alert="KERNMC"),
    MessageTemplate("ddr: excessive soft failures, consider replacing the card", "RAS MONITOR WARNING"),
    MessageTemplate("torus sender {int} retransmission error was corrected", "RAS KERNEL INFO"),
    MessageTemplate("total of {int} ddr error(s) detected and corrected", "RAS KERNEL INFO"),
    MessageTemplate("MidplaneSwitchController performing bit sparing on bit {int}", "RAS LINKCARD INFO"),
    MessageTemplate("idoproxydb has been started: $Name: DRV{int} $ Input parameters: -enableflush -loguserinfo db.properties BlueGene1", "RAS DISCOVERY SEVERE"),
    MessageTemplate("problem communicating with service card, ido chip: U{int}", "RAS MONITOR FAILURE", alert="MONILL"),
    MessageTemplate("wait state exceeds {int} cycles", "RAS KERNEL WARNING"),
    MessageTemplate("program interrupt: fp compare ... {hex}", "RAS KERNEL FATAL", alert="KERNFPC"),
    MessageTemplate("L3 ecc control register: {hex}", "RAS KERNEL INFO"),
    MessageTemplate("lustre mount FAILED: bglio{int}: point /p/gb1", "RAS FILESYS FATAL", alert="LUSTREMNT"),
    MessageTemplate("NIC reset complete on port {int}", "RAS HARDWARE INFO"),
]

_LINUX_TEMPLATES = [
    MessageTemplate("session opened for user {user} by (uid={int})", "crond(pam_unix)[{pid}]:"),
    MessageTemplate("session closed for user {user}", "crond(pam_unix)[{pid}]:"),
    MessageTemplate("authentication failure; logname= uid=0 euid=0 tty=NODEVssh ruser= rhost={ip} user={user}", "sshd(pam_unix)[{pid}]:"),
    MessageTemplate("check pass; user unknown", "sshd(pam_unix)[{pid}]:"),
    MessageTemplate("Did not receive identification string from {ip}", "sshd[{pid}]:"),
    MessageTemplate("pbs_mom: task_check, cannot tm_reply to {int} task {int}", "pbs_mom:"),
    MessageTemplate("pbs_mom: scan_for_exiting, job {int}.{node} task {int} terminated", "pbs_mom:"),
    MessageTemplate("pbs_mom: im_eof, premature end of message from addr {ip}:{port}", "pbs_mom:"),
    MessageTemplate("kernel: mptscsih: ioc{int}: attempting task abort! (sc={hex})", "kernel:"),
    MessageTemplate("kernel: scsi{int} : destination target {int}, lun {int}", "kernel:"),
    MessageTemplate("kernel: EXT3-fs error (device sd(8,{int})): ext3_find_entry: reading directory #{int} offset {int}", "kernel:", alert="EXT3"),
    MessageTemplate("kernel: CPU{int}: Temperature above threshold, cpu clock throttled", "kernel:", alert="TEMP"),
    MessageTemplate("kernel: nfs: server {node} not responding, still trying", "kernel:", alert="NFS"),
    MessageTemplate("kernel: nfs: server {node} OK", "kernel:"),
    MessageTemplate("ntpd[{pid}]: synchronized to {ip}, stratum {int}", "ntpd:"),
    MessageTemplate("ntpd[{pid}]: time reset {float} s", "ntpd:"),
    MessageTemplate("sendmail[{pid}]: {hex}: from={user}, size={int}, class={int}, nrcpts={int}", "sendmail:"),
    MessageTemplate("su(pam_unix)[{pid}]: session opened for user {user} by (uid={int})", "su:"),
    MessageTemplate("sshd[{pid}]: Accepted password for {user} from {ip} port {port} ssh2", "sshd:"),
    MessageTemplate("sshd[{pid}]: Failed password for {user} from {ip} port {port} ssh2", "sshd:", alert="AUTHFAIL"),
    MessageTemplate("kernel: Losing some ticks... checking if CPU frequency changed.", "kernel:"),
    MessageTemplate("kernel: ipmi_kcs_drv: error, status = {hex}", "kernel:", alert="IPMI"),
    MessageTemplate("xinetd[{pid}]: START: auth pid={pid} from={ip}", "xinetd:"),
    MessageTemplate("panic: kernel BUG at spinlock.c:{int}!", "kernel:", alert="PANIC"),
]

def _expand_templates(
    base: Sequence[MessageTemplate], target: int
) -> list[MessageTemplate]:
    """Grow a hand-written library to Table 1's per-dataset template count.

    Real syslog template libraries are long zipf tails: many variants of
    the same facility's messages differing only in constant fields.
    Variants append a distinct constant diagnostic (``errno=<k>`` /
    ``code=<k>``), which is exactly how real message families differ, so
    each variant is a genuine template with its own keyword.
    """
    out = list(base)
    k = 0
    while len(out) < target:
        src = base[k % len(base)]
        variant = k // len(base) + 1
        tag = f"errno={16 + variant}" if k % 2 == 0 else f"code={100 + variant}"
        out.append(
            MessageTemplate(f"{src.pattern} {tag}", src.source, src.alert)
        )
        k += 1
    return out


_TBIRD_EXTRA = [
    MessageTemplate("(root) CMD (run-parts /etc/cron.hourly)", "crond[{pid}]:"),
    MessageTemplate("ib_sm.x[{pid}]: [ib_sm_sweep.c:{int}]: No topology change", "ib_sm:"),
    MessageTemplate("ib_sm.x[{pid}]: [ib_sm_sweep.c:{int}]: sm_sweep: WARNING sweep took {int} usecs", "ib_sm:", alert="IBSWEEP"),
    MessageTemplate("check-ups: OK voltage={float}", "check-ups:"),
    MessageTemplate("dhcpd: DHCPDISCOVER from {hex} via eth{int}", "dhcpd:"),
    MessageTemplate("kernel: GM: LANai is not running. Allowing port={int} open for debugging", "kernel:", alert="GM"),
]


# ---------------------------------------------------------------------------
# Per-dataset line formats
# ---------------------------------------------------------------------------


def _bgl_node(rng: random.Random) -> str:
    return (
        f"R{rng.randrange(0, 48):02d}-M{rng.randrange(0, 2)}"
        f"-N{rng.randrange(0, 16)}-C:J{rng.randrange(0, 18):02d}"
        f"-U{rng.randrange(0, 12):02d}"
    )


def _bgl_line(rng: random.Random, epoch: int, template: MessageTemplate) -> str:
    node = _bgl_node(rng)
    fields = _Fields(rng, node)
    date = _date_of(epoch)
    stamp = (
        f"{date[0]}.{date[1]:02d}.{date[2]:02d}-"
        f"{date[3]:02d}.{date[4]:02d}.{date[5]:02d}.{rng.randrange(0, 999999):06d}"
    )
    message = fields.expand(template.pattern)
    return (
        f"{template.alert} {epoch} {date[0]}.{date[1]:02d}.{date[2]:02d} {node} "
        f"{stamp} {node} {template.source} {message}"
    )


def _syslog_line(
    host_prefix: str,
) -> Callable[[random.Random, int, MessageTemplate], str]:
    def build(rng: random.Random, epoch: int, template: MessageTemplate) -> str:
        node = f"{host_prefix}{rng.randrange(1, 470)}"
        fields = _Fields(rng, node)
        year, month, day, hh, mm, ss = _date_of(epoch)
        source = fields.expand(template.source)
        message = fields.expand(template.pattern)
        return (
            f"{template.alert} {epoch} {year}.{month:02d}.{day:02d} {node} "
            f"{_MONTHS[month - 1]} {day} {hh:02d}:{mm:02d}:{ss:02d} "
            f"{node}/{node} {source} {message}"
        )

    return build


#: 2005-01-01 00:00 UTC: the calendar baseline (HPC4 logs are 2005-ish).
_CALENDAR_BASE = 1_104_537_600


def _date_of(epoch: int) -> tuple[int, int, int, int, int, int]:
    """Tiny deterministic calendar (months of 30 days are fine here)."""
    seconds = max(0, epoch - _CALENDAR_BASE)
    ss = seconds % 60
    mm = (seconds // 60) % 60
    hh = (seconds // 3600) % 24
    days_total = seconds // 86400
    day = days_total % 30 + 1
    month = (days_total // 30) % 12 + 1
    year = 2005 + days_total // 360
    return year, month, day, hh, mm, ss


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class LogGenerator:
    """Deterministic synthetic log corpus for one dataset."""

    def __init__(
        self,
        name: str,
        templates: Sequence[MessageTemplate],
        line_builder: Callable[[random.Random, int, MessageTemplate], str],
        seed: int = 2021,
        start_epoch: int = 1_117_838_570,
        mean_interarrival_s: float = 2.0,
        burst_prob: float = 0.3,
        burst_mean: float = 8.0,
    ) -> None:
        if not templates:
            raise ValueError("a dataset needs at least one template")
        if not 0 <= burst_prob < 1:
            raise ValueError("burst_prob must be in [0, 1)")
        self.name = name
        self.templates = list(templates)
        self.line_builder = line_builder
        self.seed = seed
        self.start_epoch = start_epoch
        self.mean_interarrival_s = mean_interarrival_s
        self.burst_prob = burst_prob
        self.burst_mean = burst_mean
        self.weights = _zipf_weights(len(self.templates))

    def iter_lines(self, n_lines: int) -> Iterator[bytes]:
        """Yield ``n_lines`` log lines (no trailing newlines).

        Real HPC logs are bursty: a failing component repeats the same
        message hundreds of times within a second (error storms), which
        is the redundancy Table 5's compression results come from. Each
        event therefore repeats with probability ``burst_prob``, with a
        heavy-tailed burst length of mean ``burst_mean``.
        """
        rng = random.Random(self.seed)
        epoch = self.start_epoch
        produced = 0
        while produced < n_lines:
            template = rng.choices(self.templates, weights=self.weights, k=1)[0]
            line = self.line_builder(rng, epoch, template).encode()
            burst = 1
            if rng.random() < self.burst_prob:
                burst = 2 + min(int(rng.expovariate(1.0 / self.burst_mean)), 500)
            for _ in range(min(burst, n_lines - produced)):
                yield line
                produced += 1
            epoch += max(0, int(rng.expovariate(1.0 / self.mean_interarrival_s)))

    def generate(self, n_lines: int) -> list[bytes]:
        return list(self.iter_lines(n_lines))

    def generate_text(self, n_lines: int) -> bytes:
        """The corpus as one newline-terminated byte stream."""
        return b"".join(line + b"\n" for line in self.iter_lines(n_lines))

    @property
    def num_templates(self) -> int:
        return len(self.templates)


def generator_for(name: str, seed: int = 2021) -> LogGenerator:
    """Build the generator for one of the four HPC4-like datasets."""
    if name not in DATASET_SPECS:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_SPECS)}"
        )
    # burstiness is calibrated per dataset to land each one's compression
    # ratio in the band Table 5 reports (BGL2 least bursty, Thunderbird
    # most); template libraries are expanded to Table 1's counts
    if name == "BGL2":
        return LogGenerator(
            name, _expand_templates(_BGL2_TEMPLATES, 93), _bgl_line, seed=seed,
            burst_prob=0.27, burst_mean=5.0,
        )
    if name == "Liberty2":
        return LogGenerator(
            name, _expand_templates(_LINUX_TEMPLATES, 197),
            _syslog_line("ln"), seed=seed,
            burst_prob=0.45, burst_mean=14.0,
        )
    if name == "Spirit2":
        # Spirit shares the Linux anatomy with a different host population
        # and a slightly larger template library (extra kernel noise)
        extra = [
            MessageTemplate("kernel: ACPI: Processor [CPU{int}] (supports C1)", "kernel:"),
            MessageTemplate("kernel: hda: dma_timer_expiry: dma status == {hex}", "kernel:", alert="IDE"),
            MessageTemplate("gated[{pid}]: sendto (BGP {ip}+{port}): Invalid argument", "gated:"),
        ]
        return LogGenerator(
            name, _expand_templates(_LINUX_TEMPLATES + extra, 241),
            _syslog_line("sn"), seed=seed,
            burst_prob=0.60, burst_mean=45.0,
        )
    return LogGenerator(
        name, _expand_templates(_LINUX_TEMPLATES + _TBIRD_EXTRA, 125),
        _syslog_line("tbird-"), seed=seed,
        burst_prob=0.65, burst_mean=70.0,
    )


def all_generators(seed: int = 2021) -> dict[str, LogGenerator]:
    """Generators for all four datasets, keyed by name."""
    return {name: generator_for(name, seed=seed) for name in DATASET_SPECS}
