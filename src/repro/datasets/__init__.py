"""Workload substrate: the HPC4-like log corpora.

The paper evaluates on the HPC4 system logs (Oliner & Stearley [47]):
BGL2, Liberty2, Spirit2 and Thunderbird — hundreds of millions of lines,
tens of GB. Those files cannot ship with an offline reproduction, so
:mod:`repro.datasets.synthetic` generates scaled corpora with the same
*statistical anatomy*: per-dataset template libraries in the published
formats, Zipf-skewed template frequencies, per-line variable fields, and
the cross-line redundancy that drives the compression results.

:mod:`repro.datasets.schema` records the paper's Table 1 statistics;
:mod:`repro.datasets.loader` turns corpora into page-aligned chunks for
ingestion.
"""

from repro.datasets.loader import chunk_lines_into_pages, read_log_lines
from repro.datasets.schema import DATASET_SPECS, DatasetSpec
from repro.datasets.synthetic import LogGenerator, generator_for

__all__ = [
    "DATASET_SPECS",
    "DatasetSpec",
    "LogGenerator",
    "chunk_lines_into_pages",
    "generator_for",
    "read_log_lines",
]
