"""Corpus loading and page chunking.

Ingestion stores log text page by page; pages must break at line
boundaries so every stored page decompresses into whole lines and the
inverted index can attribute tokens to pages exactly
(:func:`chunk_lines_into_pages`). Real log files on disk load through
:func:`read_log_lines`.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Optional

from repro.errors import IngestError
from repro.params import PAGE_BYTES


def read_log_lines(path: str | os.PathLike, limit: Optional[int] = None) -> list[bytes]:
    """Read a newline-delimited log file as a list of lines.

    Handles the common real-log wrinkles: trailing newline, blank lines
    kept (they are legal log lines), and no decoding — logs are bytes.
    """
    lines: list[bytes] = []
    with open(path, "rb") as handle:
        for raw in handle:
            lines.append(raw.rstrip(b"\n"))
            if limit is not None and len(lines) >= limit:
                break
    return lines


def chunk_lines_into_pages(
    lines: Iterable[bytes],
    page_bytes: int = PAGE_BYTES,
    target_fill: float = 1.0,
) -> Iterator[tuple[bytes, list[bytes]]]:
    """Group lines into page-sized text chunks broken at line boundaries.

    Yields ``(chunk_text, chunk_lines)`` where ``chunk_text`` is the
    newline-joined, newline-terminated text of the chunk and never
    exceeds ``page_bytes * target_fill`` *uncompressed*. (When chunks are
    stored compressed, callers may pass a ``target_fill`` above 1.0 to
    fill flash pages better; the system layer calibrates this.)

    A single line longer than the budget is rejected: the paper's page
    format has no line-spanning continuation, and real HPC log lines are
    far below 4 KB.
    """
    budget = int(page_bytes * target_fill)
    if budget <= 0:
        raise IngestError("page budget must be positive")
    chunk: list[bytes] = []
    used = 0
    for line in lines:
        need = len(line) + 1
        if need > budget:
            raise IngestError(
                f"line of {len(line)} bytes exceeds the page budget {budget}"
            )
        if used + need > budget and chunk:
            yield b"".join(ln + b"\n" for ln in chunk), chunk
            chunk, used = [], 0
        chunk.append(line)
        used += need
    if chunk:
        yield b"".join(ln + b"\n" for ln in chunk), chunk
