"""Dataset specifications: the paper's Table 1, plus scaling helpers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one HPC4 dataset (Table 1)."""

    name: str
    paper_lines_millions: float
    paper_size_gb: float
    paper_templates: int

    @property
    def paper_lines(self) -> int:
        return int(self.paper_lines_millions * 1e6)

    @property
    def paper_bytes(self) -> int:
        return int(self.paper_size_gb * 1e9)

    @property
    def avg_line_bytes(self) -> float:
        """Mean line length implied by Table 1 (incl. newline)."""
        return self.paper_bytes / self.paper_lines

    def scaled_lines(self, fraction: float) -> int:
        """Line count for a corpus scaled to ``fraction`` of the paper's."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        return max(1, int(self.paper_lines * fraction))


#: Table 1, verbatim.
BGL2 = DatasetSpec("BGL2", paper_lines_millions=4.7, paper_size_gb=0.7, paper_templates=93)
LIBERTY2 = DatasetSpec("Liberty2", paper_lines_millions=265.5, paper_size_gb=30, paper_templates=197)
SPIRIT2 = DatasetSpec("Spirit2", paper_lines_millions=272.2, paper_size_gb=38, paper_templates=241)
THUNDERBIRD = DatasetSpec("Thunderbird", paper_lines_millions=211.2, paper_size_gb=30, paper_templates=125)

DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec for spec in (BGL2, LIBERTY2, SPIRIT2, THUNDERBIRD)
}
