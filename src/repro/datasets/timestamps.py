"""Timestamp extraction from log lines.

The HPC4 logs carry an epoch-seconds column (field 2 of every line, as
the Figure 1 samples show); syslog-style logs carry textual dates. The
system's time-bounded queries (Section 6.3) need per-line epochs at
ingest, so this module centralises the extraction rules — the HPC4
fast path plus a tolerant fallback — and a batch helper that degrades
gracefully on unparseable lines.
"""

from __future__ import annotations

from typing import Optional, Sequence

_MONTHS = {
    b"Jan": 1, b"Feb": 2, b"Mar": 3, b"Apr": 4, b"May": 5, b"Jun": 6,
    b"Jul": 7, b"Aug": 8, b"Sep": 9, b"Oct": 10, b"Nov": 11, b"Dec": 12,
}


def extract_epoch(line: bytes) -> Optional[float]:
    """Best-effort epoch-seconds extraction from one log line.

    Rules, in order:

    1. HPC4 format: the second whitespace field is a plain integer epoch
       (``- 1117838570 2005.06.03 ...``).
    2. Any leading field that parses as a plausible epoch (1990-2100
       range, i.e. ~6.3e8 to ~4.1e9).

    Returns ``None`` when nothing fits; callers decide whether to ingest
    without time indexing or to reject the line.
    """
    fields = line.split(None, 4)
    if len(fields) >= 2 and fields[1].isdigit():
        value = int(fields[1])
        if 6.3e8 <= value <= 4.1e9:
            return float(value)
    for field in fields[:3]:
        if field.isdigit():
            value = int(field)
            if 6.3e8 <= value <= 4.1e9:
                return float(value)
    return None


def extract_epochs(
    lines: Sequence[bytes], strict: bool = False
) -> Optional[list[float]]:
    """Per-line epochs for a batch, or ``None`` when coverage is poor.

    Snapshot-based time bounds need *monotone* timestamps; missing values
    are interpolated from their neighbours when sparse (<10%). With
    ``strict`` any missing value returns ``None`` instead.
    """
    raw = [extract_epoch(line) for line in lines]
    missing = sum(1 for value in raw if value is None)
    if missing == len(raw):
        return None
    if strict and missing:
        return None
    if missing > len(raw) // 10:
        return None
    # fill gaps with the previous (or next) known value
    filled: list[float] = []
    last: Optional[float] = next(v for v in raw if v is not None)
    for value in raw:
        if value is not None:
            last = value
        filled.append(last)
    return filled
