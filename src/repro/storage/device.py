"""The MithriLog storage device.

An SSD with a near-storage accelerator between the flash and the host link
(Figure 2). Per Section 3, host software configures the device per query,
then issues page reads which the device can serve in one of three modes:

- ``RAW`` — forward stored pages untouched,
- ``DECOMPRESS`` — run pages through the decompressor first,
- ``FILTER`` — decompress and pass lines through the filtering engine,
  forwarding only surviving lines.

The device is *functional*: plug in a real page decompressor and a real
line filter. Timing is layered on via an optional pipeline performance
model (``repro.hw.perf``): a streaming pipeline's elapsed time is set by
its bottleneck stage, which is exactly the arithmetic behind Figure 14.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import (
    RETRYABLE_STORAGE_ERRORS,
    ReadRetryExhaustedError,
    StorageError,
)
from repro.faults.policies import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.obs.metrics import get_registry
from repro.params import StorageParams
from repro.sim.clock import SimClock
from repro.storage.flash import FlashArray
from repro.storage.host_link import HostLink
from repro.storage.page import Page

#: Decompresses one stored page payload into text bytes.
PageDecompressor = Callable[[bytes], bytes]

#: Address-aware decompressor: ``(page address, payload) -> text``. The
#: address lets the host wire a decompressed-page cache keyed by page;
#: when configured it takes precedence over the plain decompressor.
AddressedPageDecompressor = Callable[[int, bytes], bytes]

#: Decides whether one log line (without trailing newline) survives.
LineFilter = Callable[[bytes], bool]

#: Process-wide device key allocator (cache namespace per device).
_DEVICE_KEYS = itertools.count()


class ReadMode(enum.Enum):
    """What the device does to pages before DMAing them to the host."""

    RAW = "raw"
    DECOMPRESS = "decompress"
    FILTER = "filter"


@dataclass
class DeviceReadResult:
    """Outcome of one device read request."""

    data: bytes
    pages_read: int
    bytes_from_flash: int
    bytes_decompressed: int
    bytes_to_host: int
    lines_seen: int = 0
    lines_kept: int = 0
    elapsed_s: float = 0.0
    read_retries: int = 0  #: transient page-read faults absorbed by retry

    @property
    def selectivity(self) -> float:
        """Fraction of lines that survived filtering (1.0 when not filtering)."""
        if self.lines_seen == 0:
            return 1.0
        return self.lines_kept / self.lines_seen


@dataclass
class DeviceConfig:
    """Per-query accelerator configuration (Section 3's command phase)."""

    decompress_page: Optional[PageDecompressor] = None
    line_filter: Optional[LineFilter] = None
    #: When set, used instead of ``decompress_page`` and handed the page
    #: address too — the hook the host's decompressed-page cache uses.
    decompress_page_at: Optional[AddressedPageDecompressor] = None


class MithriLogDevice:
    """Near-storage accelerated SSD: flash array + accelerator + host link."""

    def __init__(
        self,
        params: Optional[StorageParams] = None,
        host_link: Optional[HostLink] = None,
        flash: Optional[FlashArray] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.params = params if params is not None else StorageParams()
        self.flash = flash if flash is not None else FlashArray(self.params)
        self.host_link = host_link if host_link is not None else HostLink(
            bandwidth=self.params.external_bandwidth
        )
        self.config = DeviceConfig()
        #: Process-unique key naming this device in page-cache entries.
        self.device_key = next(_DEVICE_KEYS)
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        registry = get_registry()
        if registry is not None:
            self._m_reads = registry.counter(
                "mithrilog_storage_device_reads_total",
                "Device read requests by mode",
                labelnames=("mode",),
            )
            self._m_retries = registry.counter(
                "mithrilog_storage_read_retries_total",
                "Transient page faults absorbed by device retries",
            )
            self._m_bytes_to_host = registry.counter(
                "mithrilog_storage_bytes_to_host_total",
                "Bytes DMAed across the host link",
            )
        else:
            self._m_reads = None
            self._m_retries = None
            self._m_bytes_to_host = None

    # -- configuration -------------------------------------------------

    def configure(
        self,
        decompress_page: Optional[PageDecompressor] = None,
        line_filter: Optional[LineFilter] = None,
        decompress_page_at: Optional[AddressedPageDecompressor] = None,
    ) -> None:
        """Program the accelerator for the next query."""
        self.config = DeviceConfig(
            decompress_page=decompress_page,
            line_filter=line_filter,
            decompress_page_at=decompress_page_at,
        )

    # -- writes ----------------------------------------------------------

    def append_pages(self, pages: Sequence[Page]) -> list[int]:
        """Append pages to flash; returns their addresses (contiguous)."""
        return [self.flash.append_page(page) for page in pages]

    def write_page(self, address: int, page: Page) -> None:
        self.flash.write_page(address, page)

    # -- fault-tolerant page fetch ----------------------------------------

    def _read_one_with_retry(
        self, address: int, clock: Optional[SimClock]
    ) -> tuple[Page, int]:
        """Read one page, absorbing transient faults under the retry policy.

        Each retry waits the policy's backoff (charged to ``clock`` when
        present) and re-issues the read; the stored page is re-fetched, so
        read-path faults (bus errors, read-disturb flips) clear. Raises
        :class:`repro.errors.ReadRetryExhaustedError` once the budget is
        spent; persistent faults (bad blocks, bounds) pass through at once.
        """
        policy = self.retry_policy
        retries = 0
        while True:
            try:
                return self.flash.read_page(address, clock=clock), retries
            except RETRYABLE_STORAGE_ERRORS as exc:
                retries += 1
                if retries > policy.max_retries:
                    raise ReadRetryExhaustedError(
                        f"page {address} still failing after "
                        f"{policy.max_retries} retries: {exc}"
                    ) from exc
                if clock is not None:
                    clock.advance(policy.backoff(retries))

    def _read_batch_with_retry(
        self, addresses: Sequence[int], clock: Optional[SimClock]
    ) -> tuple[list[Page], int]:
        """Batched read with a fault-free fast path.

        The common case — no injector, no faults — is exactly the old
        single ``read_pages`` call. Only when a transient fault interrupts
        the batch does the slow path take over, re-reading page by page
        under the retry policy (paying per-page latency, as a controller
        re-issuing individual reads would).
        """
        try:
            return self.flash.read_pages(addresses, clock=clock), 0
        except RETRYABLE_STORAGE_ERRORS:
            pass
        retries = 1  # the torn batch attempt itself
        pages: list[Page] = []
        for address in addresses:
            page, extra = self._read_one_with_retry(address, clock)
            pages.append(page)
            retries += extra
        return pages, retries

    # -- executor-facing fetch -------------------------------------------

    def fetch_pages(
        self,
        addresses: Sequence[int],
        count_mode: Optional[ReadMode] = None,
    ) -> tuple[list[Page], int]:
        """Fetch raw pages for an externally-executed scan.

        The scan executor keeps flash access — and therefore fault
        injection, retries and read accounting — inside the device while
        running decompression and filtering itself. Reads go through the
        same batched retry path as :meth:`read`, in the same order, so a
        seeded fault schedule cannot tell the two apart. ``count_mode``
        attributes the request in the device's read counter (a scan
        executor fetch is still one FILTER-shaped request).
        """
        pages, retries = self._read_batch_with_retry(list(addresses), None)
        if self._m_reads is not None and count_mode is not None:
            self._m_reads.inc(mode=count_mode.value)
            if retries:
                self._m_retries.inc(retries)
        return pages, retries

    def account_host_bytes(self, nbytes: int) -> None:
        """Count bytes an external scan DMAed across the host link."""
        if self._m_bytes_to_host is not None:
            self._m_bytes_to_host.inc(nbytes)

    # -- reads -----------------------------------------------------------

    def read(
        self,
        addresses: Iterable[int],
        mode: ReadMode = ReadMode.RAW,
        clock: Optional[SimClock] = None,
        stop_after_matches: Optional[int] = None,
    ) -> DeviceReadResult:
        """Serve a page-read request in the given mode.

        The returned payload is the concatenation of per-page outputs. In
        ``FILTER`` mode the number of pages' worth of data returned may be
        far smaller than requested — host software is aware of this
        (Section 3) — and ``stop_after_matches`` lets the host cancel the
        request early once enough matches arrived (top-k exploration).
        """
        if stop_after_matches is not None and stop_after_matches <= 0:
            raise StorageError("stop_after_matches must be positive")
        if stop_after_matches is not None and mode is not ReadMode.FILTER:
            raise StorageError("early stop only applies to FILTER reads")
        start = clock.now if clock is not None else 0.0
        wanted = list(addresses)

        out_chunks: list[bytes] = []
        bytes_from_flash = 0
        bytes_decompressed = 0
        lines_seen = 0
        lines_kept = 0
        pages_read = 0
        read_retries = 0

        if stop_after_matches is None:
            # one batched request: sequential runs amortise access latency
            pages, read_retries = self._read_batch_with_retry(wanted, clock)
        else:
            pages = None  # cancellable path fetches page by page below

        for index, address in enumerate(wanted):
            if pages is not None:
                page = pages[index]
            else:
                page, extra = self._read_one_with_retry(address, clock)
                read_retries += extra
            pages_read += 1
            bytes_from_flash += len(page)
            payload = page.data
            if mode in (ReadMode.DECOMPRESS, ReadMode.FILTER):
                if self.config.decompress_page_at is not None:
                    payload = self.config.decompress_page_at(address, payload)
                elif self.config.decompress_page is not None:
                    payload = self.config.decompress_page(payload)
                else:
                    raise StorageError(
                        f"{mode.value} read requested but no decompressor configured"
                    )
                bytes_decompressed += len(payload)
            if mode is ReadMode.FILTER:
                if self.config.line_filter is None:
                    raise StorageError(
                        "filter read requested but no line filter configured"
                    )
                kept: list[bytes] = []
                for line in payload.splitlines():
                    lines_seen += 1
                    if self.config.line_filter(line):
                        lines_kept += 1
                        kept.append(line)
                        if (
                            stop_after_matches is not None
                            and lines_kept >= stop_after_matches
                        ):
                            break
                payload = b"\n".join(kept) + (b"\n" if kept else b"")
            out_chunks.append(payload)
            if stop_after_matches is not None and lines_kept >= stop_after_matches:
                break

        data = b"".join(out_chunks)
        if clock is not None:
            self.host_link.send_to_host(len(data), clock=clock)
        elapsed = (clock.now - start) if clock is not None else 0.0
        if self._m_reads is not None:
            self._m_reads.inc(mode=mode.value)
            self._m_bytes_to_host.inc(len(data))
            if read_retries:
                self._m_retries.inc(read_retries)
        return DeviceReadResult(
            data=data,
            pages_read=pages_read,
            bytes_from_flash=bytes_from_flash,
            bytes_decompressed=bytes_decompressed,
            bytes_to_host=len(data),
            lines_seen=lines_seen,
            lines_kept=lines_kept,
            elapsed_s=elapsed,
            read_retries=read_retries,
        )
