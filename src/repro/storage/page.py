"""Flash pages.

A :class:`Page` is an immutable byte payload of at most ``PAGE_BYTES``,
carrying a checksum so the fault-injection tests can model silent
corruption being caught on read.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import PageCorruptionError, StorageError
from repro.params import PAGE_BYTES

__all__ = ["PAGE_BYTES", "Page"]


@dataclass(frozen=True)
class Page:
    """One flash page: payload bytes plus integrity checksum.

    Payloads shorter than ``PAGE_BYTES`` are legal (the tail of a stream);
    longer payloads are rejected. The checksum is computed at construction
    and re-verified by :meth:`verify`.
    """

    data: bytes
    checksum: int = -1

    def __post_init__(self) -> None:
        if len(self.data) > PAGE_BYTES:
            raise StorageError(
                f"page payload of {len(self.data)} bytes exceeds {PAGE_BYTES}"
            )
        if self.checksum == -1:
            object.__setattr__(self, "checksum", zlib.crc32(self.data))

    def verify(self) -> None:
        """Raise :class:`PageCorruptionError` if payload and checksum disagree."""
        if zlib.crc32(self.data) != self.checksum:
            raise PageCorruptionError("page checksum mismatch")

    def corrupted(self, flip_at: int = 0) -> "Page":
        """Return a copy with one byte flipped but the *old* checksum.

        Used by fault-injection tests; reading such a page raises.
        """
        if not self.data:
            raise StorageError("cannot corrupt an empty page")
        pos = flip_at % len(self.data)
        mutated = bytes(
            b ^ 0xFF if i == pos else b for i, b in enumerate(self.data)
        )
        return Page(data=mutated, checksum=self.checksum)

    def __len__(self) -> int:
        return len(self.data)


def split_into_pages(payload: bytes, page_bytes: int = PAGE_BYTES) -> list[Page]:
    """Chunk a byte stream into full pages plus a possibly-short tail page."""
    if page_bytes <= 0 or page_bytes > PAGE_BYTES:
        raise StorageError(f"page_bytes must be in (0, {PAGE_BYTES}]")
    return [
        Page(payload[off : off + page_bytes])
        for off in range(0, max(len(payload), 1), page_bytes)
    ]
