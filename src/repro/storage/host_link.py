"""Host-side PCIe/DMA link model.

MithriLog's storage device talks to the host over PCIe Gen2 x8 delivering
3.1 GB/s of useful DMA bandwidth — deliberately lower than the 4.8 GB/s the
flash can supply internally. The near-storage argument of the paper is that
filtering before this link multiplies effective bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.params import PCIE_BANDWIDTH
from repro.sim.bandwidth import LinkModel
from repro.sim.clock import SimClock


class HostLink:
    """The PCIe DMA path between the device and host software."""

    def __init__(self, bandwidth: int = PCIE_BANDWIDTH, latency_s: float = 0.0) -> None:
        self.link = LinkModel(bandwidth=bandwidth, latency_s=latency_s)

    @property
    def bandwidth(self) -> int:
        return self.link.bandwidth

    def send_to_host(self, nbytes: int, clock: Optional[SimClock] = None) -> float:
        """Model DMAing ``nbytes`` to host; returns transfer seconds.

        With a clock, the transfer is serialised on the shared link and the
        clock advanced; without one, only the pure service time is returned.
        """
        if clock is None:
            seconds = self.link.transfer_seconds(nbytes)
            self.link.meter.record(nbytes, seconds)
            return seconds
        before = clock.now
        self.link.transfer_on(clock, nbytes)
        return clock.now - before

    def reset(self) -> None:
        self.link.reset()
