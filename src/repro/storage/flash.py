"""Simulated flash array.

Functionally a page-addressed store; behaviourally a device whose reads pay
``latency_s`` per access and stream at ``internal_bandwidth`` across all
channels (BlueDBM: four cards x 1.2 GB/s = 4.8 GB/s aggregate).

Timing is optional: callers that only need functional behaviour pass no
clock and pay nothing; the performance benches drive reads against a
:class:`repro.sim.clock.SimClock` to obtain paper-style elapsed times.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.errors import PageBoundsError, StorageError, UnwrittenPageError
from repro.obs.metrics import get_registry
from repro.params import StorageParams
from repro.sim.bandwidth import LinkModel
from repro.sim.clock import SimClock
from repro.storage.page import Page

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injectors import PageFaultInjector


class FlashArray:
    """A fixed-capacity array of flash pages with an internal-bandwidth model.

    An optional :class:`repro.faults.PageFaultInjector` can be attached
    (``fault_injector``); it is consulted on every page read and may raise
    a transient/persistent storage error or hand back a bit-flipped copy.
    When no injector is attached the read path pays one ``is None`` test.
    Metric handles are bound the same way: from the registry active at
    construction, or ``None`` (one null check per operation) if metrics
    are disabled.
    """

    def __init__(
        self,
        params: Optional[StorageParams] = None,
        fault_injector: Optional["PageFaultInjector"] = None,
    ) -> None:
        self.params = params if params is not None else StorageParams()
        self._pages: dict[int, Page] = {}
        self._next_free = 0
        self.fault_injector = fault_injector
        #: Called with the page address after every write (explicit writes,
        #: appends — and therefore FTL moves and index compaction, which
        #: funnel through them). The decompressed-page cache registers its
        #: invalidation here; the write path pays one truthiness test when
        #: nobody is listening.
        self.write_listeners: list[Callable[[int], None]] = []
        self.internal_link = LinkModel(
            bandwidth=self.params.internal_bandwidth,
            latency_s=self.params.latency_s,
        )
        registry = get_registry()
        if registry is not None:
            self._m_pages_read = registry.counter(
                "mithrilog_storage_pages_read_total", "Flash pages read"
            )
            self._m_bytes_read = registry.counter(
                "mithrilog_storage_bytes_read_total", "Bytes read from flash"
            )
            self._m_pages_written = registry.counter(
                "mithrilog_storage_pages_written_total", "Flash pages written"
            )
            self._m_bytes_written = registry.counter(
                "mithrilog_storage_bytes_written_total", "Bytes written to flash"
            )
        else:
            self._m_pages_read = None
            self._m_bytes_read = None
            self._m_pages_written = None
            self._m_bytes_written = None

    # -- capacity ----------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        return self.params.capacity_pages

    @property
    def pages_written(self) -> int:
        return len(self._pages)

    @property
    def next_free_address(self) -> int:
        """Next append address (pages are allocated append-only, like a log)."""
        return self._next_free

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.params.capacity_pages:
            raise PageBoundsError(
                f"page address {address} outside capacity {self.params.capacity_pages}"
            )

    # -- functional API ----------------------------------------------------

    def write_page(self, address: int, page: Page) -> None:
        """Write a page at an explicit address (index structures use this)."""
        self._check_address(address)
        self._pages[address] = page
        if address >= self._next_free:
            self._next_free = address + 1
        if self._m_pages_written is not None:
            self._m_pages_written.inc()
            self._m_bytes_written.inc(len(page))
        if self.write_listeners:
            for listener in self.write_listeners:
                listener(address)

    def append_page(self, page: Page) -> int:
        """Append a page at the next free address and return that address."""
        address = self._next_free
        self._check_address(address)
        self._pages[address] = page
        self._next_free = address + 1
        if self._m_pages_written is not None:
            self._m_pages_written.inc()
            self._m_bytes_written.inc(len(page))
        if self.write_listeners:
            for listener in self.write_listeners:
                listener(address)
        return address

    def read_page(self, address: int, clock: Optional[SimClock] = None) -> Page:
        """Read and verify one page; advances ``clock`` by the access time."""
        self._check_address(address)
        try:
            page = self._pages[address]
        except KeyError:
            raise UnwrittenPageError(
                f"page {address} has never been written"
            ) from None
        if self.fault_injector is not None:
            page = self.fault_injector.on_read(address, page)
        if clock is not None:
            self.internal_link.transfer_on(clock, len(page))
        page.verify()
        if self._m_pages_read is not None:
            self._m_pages_read.inc()
            self._m_bytes_read.inc(len(page))
        return page

    def read_pages(
        self, addresses: Iterable[int], clock: Optional[SimClock] = None
    ) -> list[Page]:
        """Read many pages; sequential runs share one latency charge.

        Flash (and NVMe queue depth) amortises latency over large sequential
        or batched reads, which is exactly the property Section 6.1's index
        design exploits. Consecutive addresses in the request stream are
        modelled as one burst: one ``latency_s`` plus streaming time for the
        whole run.
        """
        addrs = list(addresses)
        pages = []
        run_bytes = 0
        prev = None
        for addr in addrs:
            self._check_address(addr)
            if addr not in self._pages:
                raise UnwrittenPageError(f"page {addr} has never been written")
            page = self._pages[addr]
            if self.fault_injector is not None:
                page = self.fault_injector.on_read(addr, page)
            page.verify()
            pages.append(page)
            if clock is not None:
                if prev is not None and addr != prev + 1:
                    self.internal_link.transfer_on(clock, run_bytes)
                    run_bytes = 0
                run_bytes += len(page)
                prev = addr
        if clock is not None and run_bytes:
            self.internal_link.transfer_on(clock, run_bytes)
        if self._m_pages_read is not None and pages:
            self._m_pages_read.inc(len(pages))
            self._m_bytes_read.inc(sum(len(p) for p in pages))
        return pages

    def corrupt_page(self, address: int, flip_at: int = 0) -> None:
        """Fault injection: silently corrupt a stored page in place."""
        self._check_address(address)
        if address not in self._pages:
            raise StorageError(f"page {address} has never been written")
        self._pages[address] = self._pages[address].corrupted(flip_at)

    def __contains__(self, address: int) -> bool:
        return address in self._pages
