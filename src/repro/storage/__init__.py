"""Simulated NAND-flash storage substrate.

MithriLog's prototype is four BlueDBM flash cards behind two FPGAs; here the
equivalent is a page-addressed :class:`repro.storage.flash.FlashArray` with
the paper's bandwidth/latency parameters, wrapped by
:class:`repro.storage.device.MithriLogDevice`, which exposes both the raw
PCIe path and the near-storage (internal-bandwidth) path the accelerator
uses.
"""

from repro.storage.device import MithriLogDevice, ReadMode
from repro.storage.flash import FlashArray
from repro.storage.host_link import HostLink
from repro.storage.page import PAGE_BYTES, Page

__all__ = [
    "FlashArray",
    "HostLink",
    "MithriLogDevice",
    "PAGE_BYTES",
    "Page",
    "ReadMode",
]
