"""Flash translation layer.

NAND flash erases in blocks and writes in pages, so any page-addressed
view of an SSD (the one :class:`repro.storage.flash.FlashArray` exposes
and the paper's software assumes) is implemented by a translation layer:
logical page addresses map to physical (block, page) slots, overwrites
invalidate the old slot and claim a fresh one, and garbage collection
relocates live pages out of mostly-dead blocks before erasing them.

MithriLog's workload is nearly ideal for an FTL — bulk appends, no
overwrite of log data — but its *index* pages are rewritten (snapshot
flushes), which is exactly what produces invalid pages and GC traffic.
:class:`FTLFlashArray` wraps the FTL behind the FlashArray interface so
the whole system can run on flash-realistic plumbing, and its statistics
(write amplification, erase counts, wear spread) quantify the paper's
implicit claim that log workloads are flash-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import BadBlockError, PageBoundsError, StorageError
from repro.obs.metrics import get_registry
from repro.params import StorageParams
from repro.storage.flash import FlashArray
from repro.storage.page import Page

#: Pages per erase block (a typical NAND figure, scaled down).
PAGES_PER_BLOCK = 64

#: GC kicks in when free blocks drop to this threshold.
GC_FREE_BLOCK_THRESHOLD = 2


@dataclass
class _Block:
    """One erase block's bookkeeping."""

    index: int
    next_page: int = 0
    valid: int = 0
    erase_count: int = 0

    def is_full(self, pages_per_block: int) -> bool:
        return self.next_page >= pages_per_block


@dataclass(frozen=True)
class FTLStats:
    """Lifetime counters of the translation layer."""

    host_writes: int
    nand_writes: int
    erases: int
    gc_relocations: int
    min_erase: int
    max_erase: int
    retired_blocks: int = 0
    lost_pages: int = 0

    @property
    def write_amplification(self) -> float:
        if self.host_writes == 0:
            return 1.0
        return self.nand_writes / self.host_writes

    @property
    def wear_spread(self) -> int:
        return self.max_erase - self.min_erase


class FlashTranslationLayer:
    """Logical-to-physical page mapping with greedy GC and wear levelling."""

    def __init__(
        self,
        num_blocks: int,
        pages_per_block: int = PAGES_PER_BLOCK,
        gc_threshold: int = GC_FREE_BLOCK_THRESHOLD,
    ) -> None:
        if num_blocks < gc_threshold + 2:
            raise StorageError("FTL needs more blocks than its GC reserve")
        if pages_per_block <= 0:
            raise StorageError("pages_per_block must be positive")
        self.pages_per_block = pages_per_block
        self.gc_threshold = gc_threshold
        self._blocks = [_Block(index=i) for i in range(num_blocks)]
        self._free = list(range(num_blocks - 1, 0, -1))  # block 0 starts active
        self._active = self._blocks[0]
        # logical page -> physical slot (block * pages_per_block + offset)
        self._l2p: dict[int, int] = {}
        # physical slot -> (logical page, payload) for live data
        self._p2l: dict[int, tuple[int, Page]] = {}
        self.host_writes = 0
        self.nand_writes = 0
        self.erases = 0
        self.gc_relocations = 0
        self.bad_blocks: set[int] = set()
        self._lost: set[int] = set()  # logical pages destroyed with a bad block
        registry = get_registry()
        if registry is not None:
            self._m_retirements = registry.counter(
                "mithrilog_storage_bad_block_retirements_total",
                "Erase blocks permanently retired by the FTL",
            )
            self._m_erases = registry.counter(
                "mithrilog_storage_gc_erases_total", "Erase operations performed"
            )
            self._m_relocations = registry.counter(
                "mithrilog_storage_gc_relocations_total",
                "Live pages relocated by GC or block retirement",
            )
            self._m_lost_pages = registry.counter(
                "mithrilog_storage_pages_lost_total",
                "Logical pages lost with unreadable bad blocks",
            )
        else:
            self._m_retirements = None
            self._m_erases = None
            self._m_relocations = None
            self._m_lost_pages = None

    # -- capacity -----------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        # reserve the GC headroom: over-provisioning, as real SSDs do
        usable = len(self._blocks) - len(self.bad_blocks) - self.gc_threshold
        return max(usable, 0) * self.pages_per_block

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def stats(self) -> FTLStats:
        erases = [b.erase_count for b in self._blocks]
        return FTLStats(
            host_writes=self.host_writes,
            nand_writes=self.nand_writes,
            erases=self.erases,
            gc_relocations=self.gc_relocations,
            min_erase=min(erases),
            max_erase=max(erases),
            retired_blocks=len(self.bad_blocks),
            lost_pages=len(self._lost),
        )

    # -- write path -----------------------------------------------------------

    def _slot(self, block: _Block) -> int:
        return block.index * self.pages_per_block + block.next_page

    def _advance_active(self) -> None:
        if not self._free:
            raise StorageError("FTL out of free blocks despite GC")
        # wear levelling: take the least-erased free block
        best = min(self._free, key=lambda i: self._blocks[i].erase_count)
        self._free.remove(best)
        self._active = self._blocks[best]

    def write(self, logical: int, page: Page) -> None:
        """Write (or overwrite) a logical page."""
        if logical < 0:
            raise PageBoundsError(f"negative logical page {logical}")
        if logical not in self._l2p and len(self._l2p) >= self.capacity_pages:
            raise StorageError("FTL logical capacity exhausted")
        self.host_writes += 1
        self._lost.discard(logical)  # rewriting a lost page makes it valid again
        self._invalidate(logical)
        self._program(logical, page)
        if self.free_blocks <= self.gc_threshold:
            self._collect_garbage()

    def _program(self, logical: int, page: Page) -> None:
        if self._active.is_full(self.pages_per_block):
            self._advance_active()
        slot = self._slot(self._active)
        self._active.next_page += 1
        self._active.valid += 1
        self._l2p[logical] = slot
        self._p2l[slot] = (logical, page)
        self.nand_writes += 1

    def _invalidate(self, logical: int) -> None:
        slot = self._l2p.pop(logical, None)
        if slot is not None:
            self._p2l.pop(slot)
            self._blocks[slot // self.pages_per_block].valid -= 1

    # -- read path -----------------------------------------------------------

    def read(self, logical: int) -> Page:
        if logical in self._lost:
            raise BadBlockError(
                f"logical page {logical} was lost when its block went bad"
            )
        slot = self._l2p.get(logical)
        if slot is None:
            raise StorageError(f"logical page {logical} has never been written")
        return self._p2l[slot][1]

    def __contains__(self, logical: int) -> bool:
        # lost pages *were* written; reads of them raise BadBlockError
        return logical in self._l2p or logical in self._lost

    # -- garbage collection ----------------------------------------------------

    def _collect_garbage(self) -> None:
        while self.free_blocks <= self.gc_threshold:
            victim = self._pick_victim()
            if victim is None:
                return  # nothing reclaimable
            self._relocate_and_erase(victim)

    def _pick_victim(self) -> Optional[_Block]:
        candidates = [
            b
            for b in self._blocks
            if b is not self._active
            and b.index not in self._free
            and b.index not in self.bad_blocks
            and b.is_full(self.pages_per_block)
        ]
        reclaimable = [
            b for b in candidates if b.valid < self.pages_per_block
        ]
        if not reclaimable:
            return None
        # greedy: fewest valid pages; ties to least-worn (wear levelling)
        return min(reclaimable, key=lambda b: (b.valid, b.erase_count))

    def _relocate_and_erase(self, victim: _Block) -> None:
        base = victim.index * self.pages_per_block
        live = [
            (slot, self._p2l[slot])
            for slot in range(base, base + self.pages_per_block)
            if slot in self._p2l
        ]
        for slot, (logical, page) in live:
            self._p2l.pop(slot)
            self._l2p.pop(logical)
            victim.valid -= 1
            self._program(logical, page)
            self.gc_relocations += 1
        victim.next_page = 0
        victim.valid = 0
        victim.erase_count += 1
        self.erases += 1
        self._free.append(victim.index)
        if self._m_erases is not None:
            self._m_erases.inc()
            if live:
                self._m_relocations.inc(len(live))

    # -- bad-block management --------------------------------------------------

    def retire_block(self, index: int, relocate: bool = True) -> int:
        """Take one erase block permanently out of service (it went bad).

        With ``relocate=True`` the controller could still read the failing
        block (e.g. a program/erase failure) and moves its live pages to
        healthy blocks — no data is lost. With ``relocate=False`` the
        block died outright: its live pages are *lost* and every future
        read of them raises :class:`repro.errors.BadBlockError` until the
        host rewrites them. Returns the number of live pages affected.
        """
        if not 0 <= index < len(self._blocks):
            raise PageBoundsError(f"no block {index} to retire")
        if index in self.bad_blocks:
            return 0
        block = self._blocks[index]
        if block is self._active:
            self._advance_active()
        if index in self._free:
            self._free.remove(index)
        self.bad_blocks.add(index)
        base = index * self.pages_per_block
        live = [
            (slot, self._p2l[slot])
            for slot in range(base, base + self.pages_per_block)
            if slot in self._p2l
        ]
        relocated = 0
        for slot, (logical, page) in live:
            self._p2l.pop(slot)
            self._l2p.pop(logical)
            block.valid -= 1
            if relocate:
                self._program(logical, page)
                self.gc_relocations += 1
                relocated += 1
            else:
                self._lost.add(logical)
        if self._m_retirements is not None:
            self._m_retirements.inc()
            if relocated:
                self._m_relocations.inc(relocated)
            if len(live) - relocated:
                self._m_lost_pages.inc(len(live) - relocated)
        if self.free_blocks <= self.gc_threshold:
            self._collect_garbage()
        return len(live)


class FTLFlashArray(FlashArray):
    """A FlashArray whose page store is backed by the FTL.

    Drop-in for :class:`repro.storage.flash.FlashArray`: the device,
    index and system layers run unchanged on flash-realistic plumbing.
    Timing still uses the internal-bandwidth link model; the FTL adds the
    *write-side* realism (overwrites, GC, wear) that the plain array
    idealises away.
    """

    def __init__(
        self,
        params: Optional[StorageParams] = None,
        pages_per_block: int = PAGES_PER_BLOCK,
    ) -> None:
        super().__init__(params)
        num_blocks = -(-self.params.capacity_pages // pages_per_block)
        self.ftl = FlashTranslationLayer(
            num_blocks=num_blocks + GC_FREE_BLOCK_THRESHOLD + 2,
            pages_per_block=pages_per_block,
        )
        self._pages = _FTLPageView(self.ftl)  # replace the dict store


class _FTLPageView:
    """dict-like adapter exposing the FTL as FlashArray's page store."""

    def __init__(self, ftl: FlashTranslationLayer) -> None:
        self._ftl = ftl

    def __contains__(self, address: int) -> bool:
        return address in self._ftl

    def __getitem__(self, address: int) -> Page:
        if address not in self._ftl:
            raise KeyError(address)
        return self._ftl.read(address)

    def __setitem__(self, address: int, page: Page) -> None:
        self._ftl.write(address, page)

    def __len__(self) -> int:
        return len(self._ftl._l2p)
