"""Zero-dependency metrics primitives: counters, gauges, histograms.

The paper's whole evaluation (Figures 13-16, Tables 5-8) rests on
internal counters — useful-bit ratios, per-stage cycle counts, pages
read, retries absorbed. This module gives every layer of the stack one
uniform way to publish those numbers:

- :class:`Counter` — monotonically increasing totals (pages read,
  faults injected),
- :class:`Gauge` — point-in-time values (useful-bits ratio, index
  memory footprint),
- :class:`Histogram` — distributions over fixed buckets (per-shard
  query latency).

All three support Prometheus-style labels and are thread-safe. A
:class:`MetricsRegistry` owns metrics by name with get-or-create
semantics, so two components naming the same counter share it.

Instrumented components follow one pattern: at *construction* they bind
handles from the active registry (:func:`get_registry`), and on the hot
path they pay exactly one ``is None`` test when metrics are disabled::

    self._m_reads = _counter("mithrilog_storage_pages_read_total", "...")
    ...
    if self._m_reads is not None:
        self._m_reads.inc()

The registry is **default-on** (a process-wide default registry) and
**nullable**: :func:`disable` turns the handle off, :func:`enable` turns
it back on, and :func:`use_registry` scopes a fresh registry to a block
(what the tests and benchmarks use for isolation).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricError",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "use_registry",
]


class MetricError(ValueError):
    """Misuse of the metrics API (name clash, bad labels)."""


#: Default histogram buckets, tuned for *simulated seconds*: query and
#: shard latencies in this reproduction live in the µs..s range.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, float("inf"),
)


def _label_key(
    labelnames: tuple[str, ...], labels: Mapping[str, str], metric: str
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricError(
            f"metric {metric!r} takes labels {sorted(labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Shared machinery: name, help text, label schema, locked values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], float] = {}

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if not labels and not self.labelnames:
            return ()
        return _label_key(self.labelnames, labels, self.name)

    def value(self, **labels: str) -> float:
        """Current value for one label combination (0.0 if never touched)."""
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> list[tuple[dict[str, str], float]]:
        """All (labels, value) pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._values.items())
        return [
            (dict(zip(self.labelnames, key)), value) for key, value in items
        ]


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Metric):
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise MetricError(f"histogram {name} needs at least one bucket")
        if edges[-1] != float("inf"):
            edges = edges + (float("inf"),)
        self.buckets = edges
        # per label key: [bucket counts...] + observation sum + count
        self._series: dict[tuple[str, ...], list[float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [0.0] * (len(self.buckets) + 2)
                self._series[key] = series
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    series[i] += 1.0
            series[-2] += value
            series[-1] += 1.0
            self._values[key] = series[-1]  # keep .value() meaningful: count

    def series(self) -> list[tuple[dict[str, str], list[float], float, float]]:
        """All (labels, cumulative bucket counts, sum, count) tuples."""
        with self._lock:
            items = sorted(self._series.items())
        return [
            (
                dict(zip(self.labelnames, key)),
                list(s[: len(self.buckets)]),
                s[-2],
                s[-1],
            )
            for key, s in items
        ]


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Creation is idempotent: asking twice for the same name returns the
    same object, so independently constructed components share totals.
    Asking for an existing name with a different kind or label schema is
    a programming error and raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise MetricError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise MetricError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> list[_Metric]:
        """All registered metrics, sorted by name."""
        with self._lock:
            return [self._metrics[n] for n in sorted(self._metrics)]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


# ---------------------------------------------------------------------------
# The process-wide handle: default-on, nullable.
# ---------------------------------------------------------------------------

_default_registry = MetricsRegistry()
_active: Optional[MetricsRegistry] = _default_registry
_active_lock = threading.Lock()


def get_registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when metrics are disabled.

    Components consult this once, at construction, and bind per-metric
    handles; ``None`` makes every handle ``None`` and the hot path a
    single null check.
    """
    return _active


def set_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Swap the active registry (``None`` disables); returns the old one."""
    global _active
    with _active_lock:
        old = _active
        _active = registry
    return old


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Re-enable metrics; with no argument, the process default registry."""
    target = registry if registry is not None else _default_registry
    set_registry(target)
    return target


def disable() -> Optional[MetricsRegistry]:
    """Disable metrics collection; returns the registry that was active."""
    return set_registry(None)


@contextmanager
def use_registry(
    registry: Optional[MetricsRegistry],
) -> Iterator[Optional[MetricsRegistry]]:
    """Scope ``registry`` (or ``None``) to a ``with`` block.

    Components constructed inside the block bind to it; the previous
    registry is restored on exit. This is how tests isolate counters.
    """
    old = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(old)
