"""A small structured logger for the CLI and library layers.

The rule this module enforces: **library code never calls ``print``**.
Anything user-facing goes through a :class:`Logger`, which

- supports quiet/normal/verbose/debug levels (the CLI's ``--quiet`` /
  ``--verbose`` flags map straight onto them),
- appends structured ``key=value`` fields to the message so output stays
  grep-able without a JSON dependency,
- routes informational output to stdout and diagnostics (warning,
  error) to stderr, resolving the streams *at call time* so test
  harnesses that swap ``sys.stdout`` see everything.

``stdlib logging`` is deliberately not used: its global configuration
fights with embedding applications, and the CLI's reports are program
*output*, not diagnostics — a logger level is just the volume knob.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Optional, TextIO

__all__ = ["Logger", "get_logger", "set_level", "LEVELS"]

#: Symbolic level names in increasing severity.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "quiet": 100}


def _coerce_level(level: Any) -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[str(level).lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
        ) from None


def format_fields(fields: dict[str, Any]) -> str:
    """Render structured fields as stable ``key=value`` text."""
    parts = []
    for key in fields:
        value = fields[key]
        if isinstance(value, float):
            value = f"{value:g}"
        text = str(value)
        if " " in text:
            text = f'"{text}"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


class Logger:
    """Leveled, structured, stream-routed logger."""

    def __init__(self, name: str = "repro", level: Any = "info") -> None:
        self.name = name
        self._level = _coerce_level(level)
        self._lock = threading.Lock()

    # -- configuration ---------------------------------------------------

    @property
    def level(self) -> int:
        return self._level

    def set_level(self, level: Any) -> None:
        self._level = _coerce_level(level)

    def quiet(self) -> None:
        """Suppress info and below (the CLI's ``--quiet``)."""
        self.set_level("warning")

    def verbose(self) -> None:
        """Show debug output (the CLI's ``--verbose``)."""
        self.set_level("debug")

    def is_enabled(self, level: Any) -> bool:
        return _coerce_level(level) >= self._level

    # -- emission --------------------------------------------------------

    def _emit(
        self,
        level: int,
        message: str,
        fields: dict[str, Any],
        stream: TextIO,
        prefix: str = "",
    ) -> None:
        if level < self._level:
            return
        suffix = format_fields(fields)
        line = prefix + message + ((" " + suffix) if suffix else "")
        with self._lock:
            stream.write(line + "\n")

    def debug(self, message: str, **fields: Any) -> None:
        self._emit(LEVELS["debug"], message, fields, sys.stderr, "debug: ")

    def info(self, message: str, **fields: Any) -> None:
        """User-facing program output (stdout)."""
        self._emit(LEVELS["info"], message, fields, sys.stdout)

    def warning(self, message: str, **fields: Any) -> None:
        self._emit(LEVELS["warning"], message, fields, sys.stderr, "warning: ")

    def error(self, message: str, **fields: Any) -> None:
        self._emit(LEVELS["error"], message, fields, sys.stderr, "error: ")


_loggers: dict[str, Logger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str = "repro") -> Logger:
    """Process-wide named logger (one instance per name)."""
    with _loggers_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = Logger(name)
            _loggers[name] = logger
        return logger


def set_level(level: Any, name: Optional[str] = None) -> None:
    """Set one logger's level, or every registered logger's when no name."""
    with _loggers_lock:
        targets = [_loggers[name]] if name is not None else list(_loggers.values())
    for logger in targets:
        logger.set_level(level)
