"""Sim-clock time series: ring buffers over the metrics registry.

The registry (:mod:`repro.obs.metrics`) holds *cumulative* state —
counters only go up, histograms only accumulate. Live monitoring needs
the derivative: requests per second over the last window, p99 latency
over the last window. This module closes that gap without touching the
hot path:

- :class:`RingSeries` — a bounded ring of ``(t, value)`` samples on the
  simulated clock, with windowed ``delta`` and ``rate`` helpers for
  cumulative inputs,
- :class:`HistogramSnapshotSeries` — a ring of cumulative histogram
  snapshots, with :meth:`HistogramSnapshotSeries.windowed_percentile`
  computed from *bucket-count deltas* (exactly how a dashboard derives
  windowed p99 from Prometheus ``_bucket`` series),
- :class:`MetricSampler` — walks ``registry.collect()`` at a
  configurable sim-time cadence and appends one sample per
  ``(metric, labelset)`` to the matching series.

Everything is driven by explicit ``now`` arguments — wall clock never
appears, so two runs with the same seed produce byte-identical series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.obs.metrics import Histogram, MetricsRegistry, get_registry

__all__ = [
    "SeriesError",
    "SeriesPoint",
    "RingSeries",
    "HistogramSnapshotSeries",
    "MetricSampler",
]


class SeriesError(ValueError):
    """Misuse of the time-series API (non-monotone time, bad window)."""


@dataclass(frozen=True)
class SeriesPoint:
    """One sample: simulated timestamp and the value observed there."""

    t_s: float
    value: float


class RingSeries:
    """A bounded, monotone-time ring of scalar samples.

    Appends must carry non-decreasing timestamps (the simulated clock
    only moves forward); the ring keeps the most recent ``max_points``
    samples. ``kind`` records what the underlying metric was
    (``counter``/``gauge``) so consumers know whether ``rate`` is
    meaningful.
    """

    def __init__(
        self,
        name: str,
        labels: Optional[dict[str, str]] = None,
        kind: str = "gauge",
        max_points: int = 512,
    ) -> None:
        if max_points <= 1:
            raise SeriesError("RingSeries needs max_points > 1")
        self.name = name
        self.labels = dict(labels or {})
        self.kind = kind
        self.max_points = int(max_points)
        self._points: list[SeriesPoint] = []

    def __len__(self) -> int:
        return len(self._points)

    def append(self, t_s: float, value: float) -> None:
        """Record ``value`` at simulated time ``t_s`` (non-decreasing)."""
        if self._points and t_s < self._points[-1].t_s:
            raise SeriesError(
                f"series {self.name}: time went backwards "
                f"({t_s} < {self._points[-1].t_s})"
            )
        if self._points and t_s == self._points[-1].t_s:
            # Same instant: keep the latest observation only.
            self._points[-1] = SeriesPoint(t_s, float(value))
            return
        self._points.append(SeriesPoint(t_s, float(value)))
        if len(self._points) > self.max_points:
            del self._points[: len(self._points) - self.max_points]

    def points(self) -> list[SeriesPoint]:
        """All retained samples, oldest first."""
        return list(self._points)

    def window(self, start_s: float, end_s: float) -> list[SeriesPoint]:
        """Samples with ``start_s <= t <= end_s``, oldest first."""
        return [p for p in self._points if start_s <= p.t_s <= end_s]

    def latest(self) -> Optional[SeriesPoint]:
        """The most recent sample, or ``None`` when empty."""
        return self._points[-1] if self._points else None

    def value_at(self, t_s: float) -> float:
        """Latest sampled value at or before ``t_s`` (0.0 when none)."""
        result = 0.0
        for point in self._points:
            if point.t_s > t_s:
                break
            result = point.value
        return result

    def delta(self, window_s: float, now_s: float) -> float:
        """Increase over the trailing window ``[now - window_s, now]``."""
        if window_s <= 0:
            raise SeriesError("delta needs a positive window")
        return self.value_at(now_s) - self.value_at(now_s - window_s)

    def rate(self, window_s: float, now_s: float) -> float:
        """Per-second increase over the trailing window."""
        return self.delta(window_s, now_s) / window_s

    def to_dict(
        self, start_s: Optional[float] = None, end_s: Optional[float] = None
    ) -> dict:
        """JSON-ready form, optionally restricted to ``[start_s, end_s]``."""
        points = self._points
        if start_s is not None or end_s is not None:
            lo = -math.inf if start_s is None else start_s
            hi = math.inf if end_s is None else end_s
            points = [p for p in points if lo <= p.t_s <= hi]
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "kind": self.kind,
            "points": [[p.t_s, p.value] for p in points],
        }


@dataclass(frozen=True)
class _HistSnapshot:
    t_s: float
    buckets: tuple[float, ...]
    sum: float
    count: float


class HistogramSnapshotSeries:
    """A ring of cumulative histogram snapshots with windowed percentiles.

    Each sample stores the full cumulative bucket vector. A windowed
    percentile subtracts the snapshot at the window start from the one
    at the window end — the classic PromQL
    ``histogram_quantile(rate(..._bucket[w]))`` computation, done
    deterministically on the sim clock.
    """

    def __init__(
        self,
        name: str,
        edges: Sequence[float],
        labels: Optional[dict[str, str]] = None,
        max_points: int = 512,
    ) -> None:
        if max_points <= 1:
            raise SeriesError("HistogramSnapshotSeries needs max_points > 1")
        self.name = name
        self.labels = dict(labels or {})
        self.edges = tuple(float(e) for e in edges)
        self.max_points = int(max_points)
        self._snaps: list[_HistSnapshot] = []

    def __len__(self) -> int:
        return len(self._snaps)

    def append(
        self, t_s: float, buckets: Iterable[float], sum_: float, count: float
    ) -> None:
        """Record one cumulative snapshot at simulated time ``t_s``."""
        if self._snaps and t_s < self._snaps[-1].t_s:
            raise SeriesError(
                f"histogram series {self.name}: time went backwards"
            )
        snap = _HistSnapshot(t_s, tuple(buckets), float(sum_), float(count))
        if self._snaps and t_s == self._snaps[-1].t_s:
            self._snaps[-1] = snap
        else:
            self._snaps.append(snap)
        if len(self._snaps) > self.max_points:
            del self._snaps[: len(self._snaps) - self.max_points]

    def _at(self, t_s: float) -> Optional[_HistSnapshot]:
        result = None
        for snap in self._snaps:
            if snap.t_s > t_s:
                break
            result = snap
        return result

    def windowed_counts(
        self, window_s: float, now_s: float
    ) -> tuple[list[float], float, float]:
        """Bucket/sum/count deltas over the trailing window."""
        if window_s <= 0:
            raise SeriesError("windowed_counts needs a positive window")
        end = self._at(now_s)
        if end is None:
            return [0.0] * len(self.edges), 0.0, 0.0
        start = self._at(now_s - window_s)
        if start is None:
            return list(end.buckets), end.sum, end.count
        buckets = [e - s for e, s in zip(end.buckets, start.buckets)]
        return buckets, end.sum - start.sum, end.count - start.count

    def windowed_percentile(
        self, q: float, window_s: float, now_s: float
    ) -> Optional[float]:
        """Approximate the q-quantile over the trailing window.

        Linear interpolation within the winning bucket, Prometheus
        style; for the +Inf bucket the last finite edge is returned.
        ``None`` when the window saw no observations.
        """
        if not 0.0 < q < 1.0:
            raise SeriesError("percentile q must be in (0, 1)")
        buckets, _, count = self.windowed_counts(window_s, now_s)
        if count <= 0:
            return None
        target = q * count
        prev_cum = 0.0
        prev_edge = 0.0
        for edge, cum in zip(self.edges, buckets):
            if cum >= target:
                if edge == math.inf:
                    return prev_edge
                span = cum - prev_cum
                if span <= 0:
                    return edge
                frac = (target - prev_cum) / span
                return prev_edge + frac * (edge - prev_edge)
            prev_cum = cum
            if edge != math.inf:
                prev_edge = edge
        return prev_edge

    def to_dict(
        self, start_s: Optional[float] = None, end_s: Optional[float] = None
    ) -> dict:
        """JSON-ready form, optionally restricted to ``[start_s, end_s]``."""
        snaps = self._snaps
        if start_s is not None or end_s is not None:
            lo = -math.inf if start_s is None else start_s
            hi = math.inf if end_s is None else end_s
            snaps = [s for s in snaps if lo <= s.t_s <= hi]
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "kind": "histogram",
            "edges": ["inf" if e == math.inf else e for e in self.edges],
            "points": [
                {
                    "t_s": s.t_s,
                    "buckets": list(s.buckets),
                    "sum": s.sum,
                    "count": s.count,
                }
                for s in snaps
            ],
        }


def _series_key(name: str, labels: dict[str, str]) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricSampler:
    """Samples a :class:`MetricsRegistry` into ring series on a cadence.

    ``maybe_sample(now)`` is cheap to call from an event loop: it only
    walks the registry when at least ``interval_s`` of simulated time
    has passed since the previous sample. ``prefixes`` restricts
    sampling to matching metric names (default: everything).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = 0.005,
        max_points: int = 512,
        prefixes: Optional[Sequence[str]] = None,
    ) -> None:
        if interval_s <= 0:
            raise SeriesError("sampler interval must be positive")
        self.registry = registry if registry is not None else get_registry()
        self.interval_s = float(interval_s)
        self.max_points = int(max_points)
        self.prefixes = tuple(prefixes) if prefixes else None
        self.samples_taken = 0
        self.last_sample_s: Optional[float] = None
        self._scalar: dict[tuple, RingSeries] = {}
        self._hist: dict[tuple, HistogramSnapshotSeries] = {}

    def _wants(self, name: str) -> bool:
        if self.prefixes is None:
            return True
        return any(name.startswith(p) for p in self.prefixes)

    def maybe_sample(self, now_s: float) -> bool:
        """Sample if the cadence is due; returns whether a sample ran."""
        if (
            self.last_sample_s is not None
            and now_s - self.last_sample_s < self.interval_s
        ):
            return False
        self.sample(now_s)
        return True

    def sample(self, now_s: float) -> None:
        """Walk the registry and append one point per live series."""
        if self.registry is None:
            return
        for metric in self.registry.collect():
            if not self._wants(metric.name):
                continue
            if isinstance(metric, Histogram):
                for labels, buckets, total, count in metric.series():
                    key = _series_key(metric.name, labels)
                    series = self._hist.get(key)
                    if series is None:
                        series = HistogramSnapshotSeries(
                            metric.name,
                            metric.buckets,
                            labels,
                            max_points=self.max_points,
                        )
                        self._hist[key] = series
                    series.append(now_s, buckets, total, count)
            else:
                for labels, value in metric.samples():
                    key = _series_key(metric.name, labels)
                    series = self._scalar.get(key)
                    if series is None:
                        series = RingSeries(
                            metric.name,
                            labels,
                            kind=metric.kind,
                            max_points=self.max_points,
                        )
                        self._scalar[key] = series
                    series.append(now_s, value)
        self.samples_taken += 1
        self.last_sample_s = now_s

    def series(
        self, name: str, labels: Optional[dict[str, str]] = None
    ) -> Optional[RingSeries]:
        """The scalar series for ``(name, labels)``, or ``None``."""
        return self._scalar.get(_series_key(name, dict(labels or {})))

    def histogram_series(
        self, name: str, labels: Optional[dict[str, str]] = None
    ) -> Optional[HistogramSnapshotSeries]:
        """The histogram snapshot series for ``(name, labels)``."""
        return self._hist.get(_series_key(name, dict(labels or {})))

    def all_series(self) -> list[RingSeries]:
        """Every scalar series, sorted by (name, labels)."""
        return [self._scalar[k] for k in sorted(self._scalar)]

    def all_histogram_series(self) -> list[HistogramSnapshotSeries]:
        """Every histogram snapshot series, sorted by (name, labels)."""
        return [self._hist[k] for k in sorted(self._hist)]

    def rate(
        self,
        name: str,
        window_s: float,
        now_s: float,
        labels: Optional[dict[str, str]] = None,
    ) -> float:
        """Windowed per-second rate of a sampled counter (0.0 if unseen)."""
        series = self.series(name, labels)
        if series is None:
            return 0.0
        return series.rate(window_s, now_s)

    def percentile(
        self,
        name: str,
        q: float,
        window_s: float,
        now_s: float,
        labels: Optional[dict[str, str]] = None,
    ) -> Optional[float]:
        """Windowed quantile of a sampled histogram (``None`` if unseen)."""
        series = self.histogram_series(name, labels)
        if series is None:
            return None
        return series.windowed_percentile(q, window_s, now_s)

    def to_dict(
        self, start_s: Optional[float] = None, end_s: Optional[float] = None
    ) -> dict:
        """All series as a JSON-ready object (for incident bundles)."""
        return {
            "interval_s": self.interval_s,
            "samples_taken": self.samples_taken,
            "series": [s.to_dict(start_s, end_s) for s in self.all_series()],
            "histograms": [
                s.to_dict(start_s, end_s)
                for s in self.all_histogram_series()
            ],
        }
