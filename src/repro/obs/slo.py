"""Declarative SLOs with deterministic multi-window burn-rate alerting.

The ROADMAP's open items (replica failover, standing alerts) both
presuppose the system can *detect* its own degradation while a run is
in flight. This module is that detector, in the SRE-workbook shape:

- :class:`SLO` — a declarative objective: per-tenant (or ``"*"``)
  **availability** (fraction of settled requests that resolve OK) or
  **latency** (fraction of OK requests under a threshold), with an
  error-budget target like 0.99;
- burn rate — ``bad_fraction / (1 - target)``: 1.0 means spending the
  budget exactly as provisioned, 10 means burning it 10x too fast;
- the multi-window rule — an alert becomes *active* only when **both**
  a fast window (catches the spike) and a slow window (suppresses
  blips) burn above the threshold;
- :class:`AlertState` machine — ``ok → pending → firing → resolved``,
  advanced only by simulated time, so two runs with the same seed
  produce identical alert timelines (pinned by hypothesis tests);
- :class:`SLOMonitor` — the live evaluator: feed it every settled
  response (``observe_response``) or journal record (``replay_journal``)
  and it maintains event windows, error budgets, ``mithrilog_slo_*``
  metrics, and fires listener callbacks (the flight recorder's hook)
  on state transitions.

Config files are JSON (``kind: mithrilog_slo_config``); see
:func:`load_slo_config` and :func:`default_slos`.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.journal import QueryJournal
    from repro.obs.series import MetricSampler
    from repro.service.request import Response

__all__ = [
    "SLO_CONFIG_KIND",
    "SLO_CONFIG_VERSION",
    "SLOError",
    "SLO",
    "AlertState",
    "Alert",
    "SLOMonitor",
    "default_slos",
    "parse_slo_config",
    "load_slo_config",
    "looks_like_slo_config",
    "validate_slo_config",
    "replay_journal",
]

SLO_CONFIG_KIND = "mithrilog_slo_config"
SLO_CONFIG_VERSION = 1

OBJECTIVES = ("availability", "latency")


class SLOError(ValueError):
    """A malformed SLO definition or config artifact."""


class AlertState(str, enum.Enum):
    """Lifecycle of one SLO's alert."""

    OK = "ok"
    PENDING = "pending"
    FIRING = "firing"
    RESOLVED = "resolved"


@dataclass(frozen=True)
class SLO:
    """One declarative objective plus its burn-rate alert policy.

    ``tenant="*"`` aggregates over every tenant. Availability counts a
    settled request *good* when it resolved OK (and, with
    ``count_degraded``, was not served degraded); latency considers OK
    responses only and counts one good when its end-to-end simulated
    latency is at or under ``latency_threshold_s``.
    """

    name: str
    objective: str = "availability"  #: "availability" | "latency"
    tenant: str = "*"  #: tenant name, or "*" for all tenants
    target: float = 0.99  #: good fraction the budget is provisioned for
    latency_threshold_s: Optional[float] = None  #: latency SLOs only
    fast_window_s: float = 0.05  #: spike-catching window (sim seconds)
    slow_window_s: float = 0.25  #: blip-suppressing window (sim seconds)
    burn_threshold: float = 4.0  #: both windows must burn above this
    pending_for_s: float = 0.0  #: dwell before pending escalates to firing
    resolve_after_s: float = 0.1  #: quiet time before firing resolves
    count_degraded: bool = False  #: degraded OK responses count as bad

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise SLOError(
                f"slo {self.name!r}: objective must be one of {OBJECTIVES}"
            )
        if not 0.0 < self.target < 1.0:
            raise SLOError(f"slo {self.name!r}: target must be in (0, 1)")
        if self.objective == "latency" and self.latency_threshold_s is None:
            raise SLOError(
                f"slo {self.name!r}: latency objective needs "
                "latency_threshold_s"
            )
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise SLOError(f"slo {self.name!r}: windows must be positive")
        if self.fast_window_s > self.slow_window_s:
            raise SLOError(
                f"slo {self.name!r}: fast window must not exceed slow window"
            )
        if self.burn_threshold <= 0:
            raise SLOError(f"slo {self.name!r}: burn threshold must be > 0")

    def classify(
        self,
        tenant: str,
        outcome: str,
        latency_s: float,
        degraded: bool = False,
    ) -> Optional[bool]:
        """Is this settled event good (True), bad (False), or N/A (None)?"""
        if self.tenant != "*" and tenant != self.tenant:
            return None
        if self.objective == "availability":
            if outcome == "approximated":
                # an estimated answer: degraded service, not lost work
                return not self.count_degraded
            if outcome != "ok":
                return False
            if self.count_degraded and degraded:
                return False
            return True
        # latency objective: only answered responses are in scope
        if outcome not in ("ok", "approximated"):
            return None
        assert self.latency_threshold_s is not None
        return latency_s <= self.latency_threshold_s

    def to_dict(self) -> dict:
        """JSON-ready form (used by configs and incident bundles)."""
        return {
            "name": self.name,
            "objective": self.objective,
            "tenant": self.tenant,
            "target": self.target,
            "latency_threshold_s": self.latency_threshold_s,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "burn_threshold": self.burn_threshold,
            "pending_for_s": self.pending_for_s,
            "resolve_after_s": self.resolve_after_s,
            "count_degraded": self.count_degraded,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SLO":
        """Build an SLO from its JSON form; raises :class:`SLOError`."""
        if not isinstance(payload, dict):
            raise SLOError("slo entry must be an object")
        if "name" not in payload:
            raise SLOError("slo entry needs a name")
        known = {
            "name", "objective", "tenant", "target", "latency_threshold_s",
            "fast_window_s", "slow_window_s", "burn_threshold",
            "pending_for_s", "resolve_after_s", "count_degraded",
        }
        unknown = set(payload) - known
        if unknown:
            raise SLOError(
                f"slo {payload.get('name')!r}: unknown keys {sorted(unknown)}"
            )
        try:
            return cls(**payload)
        except TypeError as exc:  # pragma: no cover - defensive
            raise SLOError(f"malformed slo entry: {exc}") from exc


@dataclass
class Alert:
    """One alert incident: when it pended, fired, and resolved."""

    slo: str
    pending_at_s: float
    fired_at_s: Optional[float] = None
    resolved_at_s: Optional[float] = None
    burn_fast_at_fire: float = 0.0
    burn_slow_at_fire: float = 0.0
    budget_total_events: int = 0  #: in-scope events seen when it fired
    budget_bad_events: int = 0  #: bad in-scope events seen when it fired

    def to_dict(self) -> dict:
        """JSON-ready form (used by timelines and incident bundles)."""
        return {
            "slo": self.slo,
            "pending_at_s": self.pending_at_s,
            "fired_at_s": self.fired_at_s,
            "resolved_at_s": self.resolved_at_s,
            "burn_fast_at_fire": self.burn_fast_at_fire,
            "burn_slow_at_fire": self.burn_slow_at_fire,
            "budget_total_events": self.budget_total_events,
            "budget_bad_events": self.budget_bad_events,
        }


@dataclass
class _SLORuntime:
    """Mutable evaluation state for one SLO."""

    slo: SLO
    events: deque = field(default_factory=deque)  #: (t_s, good) in slow window
    total_events: int = 0  #: cumulative in-scope events (budget accounting)
    bad_events: int = 0  #: cumulative bad events (budget accounting)
    state: AlertState = AlertState.OK
    pending_since_s: Optional[float] = None
    below_since_s: Optional[float] = None
    alert: Optional[Alert] = None  #: the in-flight (pending/firing) alert

    def observe(self, t_s: float, good: bool) -> None:
        self.events.append((t_s, good))
        self.total_events += 1
        if not good:
            self.bad_events += 1

    def prune(self, now_s: float) -> None:
        horizon = now_s - self.slo.slow_window_s
        while self.events and self.events[0][0] < horizon:
            self.events.popleft()

    def burn(self, window_s: float, now_s: float) -> float:
        start = now_s - window_s
        total = 0
        bad = 0
        for t_s, good in self.events:
            if t_s >= start:
                total += 1
                if not good:
                    bad += 1
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.slo.target)


class SLOMonitor:
    """Evaluates SLOs live over settled events on the simulated clock.

    Feed it every settled request (:meth:`observe` /
    :meth:`observe_response`); it maintains per-SLO sliding windows and,
    at ``interval_s`` cadence (plus one forced evaluation per explicit
    :meth:`evaluate` call), advances each alert state machine. State
    transitions are appended to :meth:`timeline` and fanned out to
    ``on_transition`` listeners — the flight recorder registers itself
    there. An optional :class:`~repro.obs.series.MetricSampler` is
    ticked on the same cadence so series stay aligned with evaluations.
    """

    def __init__(
        self,
        slos: Sequence[SLO],
        interval_s: float = 0.005,
        sampler: Optional["MetricSampler"] = None,
    ) -> None:
        if interval_s <= 0:
            raise SLOError("monitor interval must be positive")
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise SLOError("duplicate SLO names in one monitor")
        self.slos = list(slos)
        self.interval_s = float(interval_s)
        self.sampler = sampler
        self.alerts: list[Alert] = []  #: every alert ever raised, in order
        self.on_transition: list[
            Callable[[SLO, Alert, AlertState, float], None]
        ] = []
        self._runtimes = [_SLORuntime(slo) for slo in self.slos]
        self._timeline: list[dict] = []
        self._last_eval_s: Optional[float] = None
        self.evaluations = 0
        registry = get_registry()
        if registry is not None:
            self._m_evals = registry.counter(
                "mithrilog_slo_evaluations_total",
                "Burn-rate evaluation sweeps the monitor has run",
            )
            self._m_transitions = registry.counter(
                "mithrilog_slo_transitions_total",
                "Alert state transitions by SLO and new state",
                labelnames=("slo", "state"),
            )
            self._m_burn = registry.gauge(
                "mithrilog_slo_burn_rate",
                "Latest burn rate by SLO and window",
                labelnames=("slo", "window"),
            )
            self._m_budget = registry.gauge(
                "mithrilog_slo_error_budget_used_ratio",
                "Cumulative error budget consumed (1.0 = exhausted)",
                labelnames=("slo",),
            )
            self._m_firing = registry.gauge(
                "mithrilog_slo_alerts_firing",
                "Alerts currently in the firing state",
            )
        else:
            self._m_evals = None
            self._m_transitions = None
            self._m_burn = None
            self._m_budget = None
            self._m_firing = None

    def add_slo(self, slo: SLO) -> None:
        """Register another objective on a live monitor.

        Standing queries (:mod:`repro.stream.standing`) attach their
        threshold SLOs at registration time, after the monitor exists.
        The new objective starts with empty windows at state OK.
        """
        if any(existing.name == slo.name for existing in self.slos):
            raise SLOError(f"duplicate SLO {slo.name!r}")
        self.slos.append(slo)
        self._runtimes.append(_SLORuntime(slo))

    # -- event intake ------------------------------------------------------

    def observe(
        self,
        tenant: str,
        outcome: str,
        latency_s: float,
        now_s: float,
        degraded: bool = False,
    ) -> None:
        """Record one settled event and run a cadence-gated evaluation."""
        for runtime in self._runtimes:
            good = runtime.slo.classify(tenant, outcome, latency_s, degraded)
            if good is not None:
                runtime.observe(now_s, good)
        self.maybe_evaluate(now_s)

    def observe_response(self, response: "Response", now_s: float) -> None:
        """Record one settled :class:`~repro.service.request.Response`."""
        self.observe(
            tenant=response.request.tenant,
            outcome=response.outcome.value,
            latency_s=response.latency_s,
            now_s=now_s,
            degraded=response.degraded,
        )

    # -- evaluation --------------------------------------------------------

    def maybe_evaluate(self, now_s: float) -> bool:
        """Evaluate if at least ``interval_s`` passed; returns whether run."""
        if (
            self._last_eval_s is not None
            and now_s - self._last_eval_s < self.interval_s
        ):
            return False
        self.evaluate(now_s)
        return True

    def evaluate(self, now_s: float) -> None:
        """Advance every alert state machine to simulated time ``now_s``."""
        self._last_eval_s = now_s
        self.evaluations += 1
        if self._m_evals is not None:
            self._m_evals.inc()
        if self.sampler is not None:
            self.sampler.maybe_sample(now_s)
        for runtime in self._runtimes:
            self._evaluate_one(runtime, now_s)
        if self._m_firing is not None:
            self._m_firing.set(
                sum(
                    1
                    for r in self._runtimes
                    if r.state is AlertState.FIRING
                )
            )

    def _evaluate_one(self, runtime: _SLORuntime, now_s: float) -> None:
        slo = runtime.slo
        runtime.prune(now_s)
        burn_fast = runtime.burn(slo.fast_window_s, now_s)
        burn_slow = runtime.burn(slo.slow_window_s, now_s)
        if self._m_burn is not None:
            self._m_burn.set(burn_fast, slo=slo.name, window="fast")
            self._m_burn.set(burn_slow, slo=slo.name, window="slow")
        if self._m_budget is not None and runtime.total_events:
            budget = (1.0 - slo.target) * runtime.total_events
            self._m_budget.set(
                runtime.bad_events / budget if budget > 0 else 0.0,
                slo=slo.name,
            )
        active = (
            burn_fast >= slo.burn_threshold
            and burn_slow >= slo.burn_threshold
        )

        if runtime.state is AlertState.OK:
            if active:
                runtime.pending_since_s = now_s
                runtime.alert = Alert(slo=slo.name, pending_at_s=now_s)
                self.alerts.append(runtime.alert)
                self._transition(runtime, AlertState.PENDING, now_s)
                if now_s - runtime.pending_since_s >= slo.pending_for_s:
                    self._fire(runtime, now_s, burn_fast, burn_slow)
            return

        if runtime.state is AlertState.PENDING:
            if not active:
                runtime.pending_since_s = None
                runtime.alert = None
                self._transition(runtime, AlertState.OK, now_s)
                return
            assert runtime.pending_since_s is not None
            if now_s - runtime.pending_since_s >= slo.pending_for_s:
                self._fire(runtime, now_s, burn_fast, burn_slow)
            return

        if runtime.state is AlertState.FIRING:
            if active:
                runtime.below_since_s = None
                return
            if runtime.below_since_s is None:
                runtime.below_since_s = now_s
            if now_s - runtime.below_since_s >= slo.resolve_after_s:
                assert runtime.alert is not None
                runtime.alert.resolved_at_s = now_s
                self._transition(runtime, AlertState.RESOLVED, now_s)
                runtime.alert = None
                runtime.below_since_s = None
                runtime.state = AlertState.OK
            return

    def _fire(
        self,
        runtime: _SLORuntime,
        now_s: float,
        burn_fast: float,
        burn_slow: float,
    ) -> None:
        assert runtime.alert is not None
        runtime.alert.fired_at_s = now_s
        runtime.alert.burn_fast_at_fire = burn_fast
        runtime.alert.burn_slow_at_fire = burn_slow
        runtime.alert.budget_total_events = runtime.total_events
        runtime.alert.budget_bad_events = runtime.bad_events
        runtime.below_since_s = None
        self._transition(runtime, AlertState.FIRING, now_s)

    def _transition(
        self, runtime: _SLORuntime, state: AlertState, now_s: float
    ) -> None:
        previous = runtime.state
        runtime.state = state
        self._timeline.append(
            {
                "t_s": now_s,
                "slo": runtime.slo.name,
                "from": previous.value,
                "to": state.value,
            }
        )
        if self._m_transitions is not None:
            self._m_transitions.inc(slo=runtime.slo.name, state=state.value)
        if runtime.alert is not None:
            for listener in self.on_transition:
                listener(runtime.slo, runtime.alert, state, now_s)

    # -- reading -----------------------------------------------------------

    def timeline(self) -> list[dict]:
        """Every state transition, in simulated-time order."""
        return list(self._timeline)

    def state_of(self, name: str) -> AlertState:
        """Current alert state of the named SLO."""
        for runtime in self._runtimes:
            if runtime.slo.name == name:
                return runtime.state
        raise SLOError(f"unknown SLO {name!r}")

    def firing(self) -> list[Alert]:
        """Alerts currently in the firing state."""
        return [
            r.alert
            for r in self._runtimes
            if r.state is AlertState.FIRING and r.alert is not None
        ]

    def budget(self, name: str) -> dict:
        """Cumulative error-budget accounting for the named SLO."""
        for runtime in self._runtimes:
            if runtime.slo.name == name:
                budget_events = (
                    (1.0 - runtime.slo.target) * runtime.total_events
                )
                return {
                    "slo": name,
                    "total_events": runtime.total_events,
                    "bad_events": runtime.bad_events,
                    "budget_events": budget_events,
                    "consumed_ratio": (
                        runtime.bad_events / budget_events
                        if budget_events > 0
                        else 0.0
                    ),
                }
        raise SLOError(f"unknown SLO {name!r}")

    def to_dict(self) -> dict:
        """Monitor summary (config, states, budgets, timeline)."""
        return {
            "interval_s": self.interval_s,
            "evaluations": self.evaluations,
            "slos": [s.to_dict() for s in self.slos],
            "states": {
                r.slo.name: r.state.value for r in self._runtimes
            },
            "budgets": [self.budget(s.name) for s in self.slos],
            "alerts": [a.to_dict() for a in self.alerts],
            "timeline": self.timeline(),
        }


# ---------------------------------------------------------------------------
# Config files
# ---------------------------------------------------------------------------


def default_slos() -> list[SLO]:
    """The stock objectives used when no ``--slo-config`` is given."""
    return [
        SLO(
            name="availability-all",
            objective="availability",
            tenant="*",
            target=0.9,
        ),
        SLO(
            name="latency-p-all",
            objective="latency",
            tenant="*",
            target=0.9,
            latency_threshold_s=0.05,
        ),
    ]


def looks_like_slo_config(payload: object) -> bool:
    """Is this payload shaped like an SLO config artifact?"""
    return (
        isinstance(payload, dict)
        and payload.get("kind") == SLO_CONFIG_KIND
    )


def validate_slo_config(payload: object) -> list[str]:
    """Schema check for a config payload; returns problem strings."""
    if not isinstance(payload, dict):
        return ["not an object"]
    problems: list[str] = []
    if not looks_like_slo_config(payload):
        problems.append(
            f"kind must be {SLO_CONFIG_KIND!r}, got {payload.get('kind')!r}"
        )
        return problems
    if payload.get("version") != SLO_CONFIG_VERSION:
        problems.append(
            f"unsupported config version {payload.get('version')!r}"
        )
    interval = payload.get("check_interval_s", 0.005)
    if not isinstance(interval, (int, float)) or interval <= 0:
        problems.append("check_interval_s must be a positive number")
    entries = payload.get("slos")
    if not isinstance(entries, list) or not entries:
        problems.append("slos must be a non-empty list")
        return problems
    names: set[str] = set()
    for i, entry in enumerate(entries):
        try:
            slo = SLO.from_dict(entry)
        except SLOError as exc:
            problems.append(f"slos[{i}]: {exc}")
            continue
        if slo.name in names:
            problems.append(f"slos[{i}]: duplicate name {slo.name!r}")
        names.add(slo.name)
    return problems


def parse_slo_config(payload: dict) -> tuple[list[SLO], float]:
    """Validated ``(slos, check_interval_s)`` from a config payload."""
    problems = validate_slo_config(payload)
    if problems:
        raise SLOError("; ".join(problems))
    slos = [SLO.from_dict(entry) for entry in payload["slos"]]
    return slos, float(payload.get("check_interval_s", 0.005))


def load_slo_config(path: Union[str, Path]) -> tuple[list[SLO], float]:
    """Read and validate a JSON SLO config from disk."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SLOError(f"{path}: unreadable SLO config ({exc})") from exc
    return parse_slo_config(payload)


def replay_journal(
    monitor: SLOMonitor, journal: "QueryJournal"
) -> SLOMonitor:
    """Drive a monitor from a recorded journal, in completion order.

    Offline twin of the live wiring: each record becomes one
    ``observe`` at its recorded completion time, so the alert timeline
    a replay produces matches what the live run would have shown.
    Returns the monitor for chaining.
    """
    records = sorted(journal.records, key=lambda r: (r.completed_at_s, r.seq))
    for record in records:
        monitor.observe(
            tenant=record.tenant,
            outcome=record.outcome,
            latency_s=record.latency_s,
            now_s=record.completed_at_s,
            degraded=record.degraded,
        )
    if records:
        monitor.evaluate(records[-1].completed_at_s)
    return monitor
