"""Exposition: Prometheus text format and JSON snapshots.

Renders a :class:`repro.obs.metrics.MetricsRegistry` the two ways a
production deployment consumes it:

- :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  cumulative ``_bucket``/``_sum``/``_count`` series for histograms),
- :func:`snapshot` / :func:`write_snapshot` — a JSON object suitable
  for benchmark artifacts and offline diffing.

:func:`bootstrap_families` pre-registers the stack's canonical metric
families with zero values, the way long-running services register their
metrics at startup, so an exposition taken before any fault or WAL
activity still lists every family a dashboard would scrape.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional, Union

from repro.obs.metrics import Histogram, MetricsRegistry, get_registry

__all__ = [
    "render_prometheus",
    "snapshot",
    "write_snapshot",
    "bootstrap_families",
]


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    # Exposition format: backslash, double-quote and line feed must be
    # escaped inside label values (backslash first, or it re-escapes).
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format."""
    registry = registry if registry is not None else get_registry()
    if registry is None:
        return "# metrics disabled\n"
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for labels, buckets, total, count in metric.series():
                for edge, cumulative in zip(metric.buckets, buckets):
                    le = _fmt_labels(labels, f'le="{_fmt_value(edge)}"')
                    lines.append(
                        f"{metric.name}_bucket{le} {_fmt_value(cumulative)}"
                    )
                rendered = _fmt_labels(labels)
                lines.append(f"{metric.name}_sum{rendered} {_fmt_value(total)}")
                lines.append(f"{metric.name}_count{rendered} {_fmt_value(count)}")
            if not metric.series():
                lines.append(f"{metric.name}_count {_fmt_value(0)}")
        else:
            samples = metric.samples()
            if not samples:
                lines.append(f"{metric.name} 0")
            for labels, value in samples:
                lines.append(
                    f"{metric.name}{_fmt_labels(labels)} {_fmt_value(value)}"
                )
    return "\n".join(lines) + "\n"


def snapshot(registry: Optional[MetricsRegistry] = None) -> dict:
    """The registry as a JSON-serialisable snapshot object."""
    registry = registry if registry is not None else get_registry()
    out: dict = {"metrics": {}}
    if registry is None:
        out["disabled"] = True
        return out
    for metric in registry.collect():
        entry: dict = {
            "type": metric.kind,
            "help": metric.help,
            "labelnames": list(metric.labelnames),
        }
        if isinstance(metric, Histogram):
            entry["buckets"] = [
                "inf" if b == math.inf else b for b in metric.buckets
            ]
            entry["series"] = [
                {"labels": labels, "counts": counts, "sum": total, "count": count}
                for labels, counts, total, count in metric.series()
            ]
        else:
            entry["samples"] = [
                {"labels": labels, "value": value}
                for labels, value in metric.samples()
            ]
        out["metrics"][metric.name] = entry
    return out


def write_snapshot(
    path: Union[str, Path], registry: Optional[MetricsRegistry] = None
) -> Path:
    """Write the JSON snapshot to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot(registry), indent=1, sort_keys=True))
    return path


def bootstrap_families(registry: Optional[MetricsRegistry] = None) -> None:
    """Pre-register the stack's canonical metric families (zero-valued).

    Storage, pipeline, index, WAL, fault and query families are the ones
    every exposition should carry even before the matching subsystem has
    run — a scrape of a freshly started system must not look different
    in shape from a scrape of a busy one.
    """
    registry = registry if registry is not None else get_registry()
    if registry is None:
        return
    registry.counter(
        "mithrilog_storage_pages_read_total", "Flash pages read"
    )
    registry.counter(
        "mithrilog_storage_bytes_read_total", "Bytes read from flash"
    )
    registry.counter(
        "mithrilog_storage_pages_written_total", "Flash pages written"
    )
    registry.counter(
        "mithrilog_storage_read_retries_total",
        "Transient page faults absorbed by device retries",
    )
    registry.counter(
        "mithrilog_storage_bad_block_retirements_total",
        "Erase blocks permanently retired by the FTL",
    )
    registry.counter(
        "mithrilog_pipeline_cycles_total", "Filter pipeline cycles modelled"
    )
    registry.gauge(
        "mithrilog_pipeline_useful_bits_ratio",
        "Non-padding share of the tokenized datapath stream (Figure 13)",
    )
    registry.counter(
        "mithrilog_index_lookups_total", "Inverted-index token lookups"
    )
    registry.counter(
        "mithrilog_index_full_scans_total",
        "Queries the index could not narrow (full-scan fallback)",
    )
    registry.counter("mithrilog_wal_appends_total", "WAL batches journalled")
    registry.counter(
        "mithrilog_wal_recoveries_total",
        "WAL recovery outcomes",
        labelnames=("outcome",),
    )
    registry.counter(
        "mithrilog_faults_injected_total",
        "Injected faults by kind and component",
        labelnames=("kind", "component"),
    )
    registry.counter(
        "mithrilog_query_total", "End-to-end queries", labelnames=("path",)
    )
    registry.counter(
        "mithrilog_scan_cache_hits_total",
        "Decompressed-page cache hits",
    )
    registry.counter(
        "mithrilog_scan_cache_misses_total",
        "Decompressed-page cache misses",
    )
    registry.gauge(
        "mithrilog_scan_workers",
        "Worker count used by the most recent scan",
    )
    registry.gauge(
        "mithrilog_scan_batch_queries",
        "Concurrent queries in the most recent scan batch",
    )
    registry.counter(
        "mithrilog_explain_requests_total",
        "EXPLAIN reports built, by mode (estimate/analyze)",
        labelnames=("mode",),
    )
    registry.counter(
        "mithrilog_service_requests_total",
        "Service requests by tenant and outcome",
        labelnames=("tenant", "outcome"),
    )
    registry.gauge(
        "mithrilog_service_queue_depth",
        "Admission queue depth per tenant",
        labelnames=("tenant",),
    )
    registry.gauge(
        "mithrilog_service_backlog",
        "Total queued requests across tenants",
    )
    registry.histogram(
        "mithrilog_service_latency_seconds",
        "Per-tenant end-to-end simulated latency (OK only)",
        labelnames=("tenant",),
    )
    registry.counter(
        "mithrilog_service_passes_total",
        "Accelerator passes the service scheduled",
    )
    registry.histogram(
        "mithrilog_service_batch_size",
        "Queries packed per accelerator pass",
        buckets=(1.0, 2.0, 4.0, 8.0, 16.0, math.inf),
    )
    registry.counter(
        "mithrilog_workload_journal_records_total",
        "Journal records appended, by outcome",
        labelnames=("outcome",),
    )
    registry.gauge(
        "mithrilog_workload_templates",
        "Distinct query templates the journal has seen",
    )
    registry.counter(
        "mithrilog_workload_hint_demotions_total",
        "Requests demoted by template admission hints",
    )
    registry.gauge(
        "mithrilog_workload_slow_templates",
        "Templates the active hint provider marks as pathologically slow",
    )
    registry.gauge(
        "mithrilog_util_busy_fraction",
        "Per-resource busy fraction of the latest query's scan window",
        labelnames=("resource",),
    )
    registry.counter(
        "mithrilog_profile_calls_total",
        "Host-side kernel invocations by scan stage",
        labelnames=("stage",),
    )
    registry.counter(
        "mithrilog_profile_units_total",
        "Work units processed by scan stage (bytes or lines)",
        labelnames=("stage",),
    )
    registry.counter(
        "mithrilog_profile_wall_seconds_total",
        "Measured host wall-clock by scan stage",
        labelnames=("stage",),
    )
    registry.counter(
        "mithrilog_slo_evaluations_total",
        "Burn-rate evaluation sweeps the monitor has run",
    )
    registry.counter(
        "mithrilog_slo_transitions_total",
        "Alert state transitions by SLO and new state",
        labelnames=("slo", "state"),
    )
    registry.gauge(
        "mithrilog_slo_burn_rate",
        "Latest burn rate by SLO and window",
        labelnames=("slo", "window"),
    )
    registry.gauge(
        "mithrilog_slo_error_budget_used_ratio",
        "Cumulative error budget consumed (1.0 = exhausted)",
        labelnames=("slo",),
    )
    registry.gauge(
        "mithrilog_slo_alerts_firing",
        "Alerts currently in the firing state",
    )
    registry.counter(
        "mithrilog_slo_incidents_recorded_total",
        "Incident bundles captured by the flight recorder",
    )
    registry.gauge(
        "mithrilog_ingest_pending_lines",
        "Lines buffered in the arrival tail, not yet persisted",
    )
    registry.counter(
        "mithrilog_ingest_overflow_shed_total",
        "Arriving lines dropped by the bounded-buffer shed policy",
    )
    registry.gauge(
        "mithrilog_service_degraded_to_sample",
        "Requests degraded to the sampled admission class "
        "instead of being shed",
    )
    registry.counter(
        "mithrilog_stream_evaluations_total",
        "Standing-query incremental evaluations",
        labelnames=("query",),
    )
    registry.counter(
        "mithrilog_stream_matches_total",
        "Lines matched by standing queries over newly sealed pages",
        labelnames=("query",),
    )
    registry.gauge(
        "mithrilog_stream_window_value",
        "Latest windowed aggregate value per standing query",
        labelnames=("query", "aggregate"),
    )
    registry.gauge(
        "mithrilog_stream_standing_queries",
        "Standing queries currently registered",
    )
    registry.counter(
        "mithrilog_stream_sampled_scans_total",
        "Approximate scans served from a sampled page subset",
    )
    registry.counter(
        "mithrilog_stream_sampled_pages_skipped_total",
        "Candidate pages the sampler let approximate scans skip",
    )
