"""A/B workload reports: did a configuration change help *every* slice?

The failure mode this module exists for: a change (bigger cache, new
index strategy, a scheduler policy) improves aggregate goodput while
quietly destroying one tenant's p99 or starving one template — the
aggregate win *hides* the per-slice regression. The report builder
takes two mined :class:`~repro.analytics.workload.WorkloadProfile`
objects (baseline **A**, candidate **B**) produced from journals of the
same seeded workload under the two configurations, diffs every slice
they share, and flags exactly those hidden regressions.

Artifacts render two ways: JSON (``kind: mithrilog_ab_report``, schema-
checked by ``repro.obs.check``) for machines, and markdown for humans —
the shape ``benchmarks/bench_workload.py`` writes and CI uploads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.analytics.workload import DIMENSIONS, WorkloadProfile, drift

__all__ = [
    "AB_REPORT_KIND",
    "ABReport",
    "ReportError",
    "SliceDelta",
    "build_ab_report",
    "looks_like_ab_report",
    "validate_ab_report",
]

AB_REPORT_KIND = "mithrilog_ab_report"
AB_REPORT_VERSION = 1

#: Ignore latency movements smaller than this (simulated ms) — float
#: noise from reordered arithmetic must not flag a regression.
LATENCY_EPSILON_MS = 1e-6


class ReportError(ValueError):
    """An A/B report artifact that cannot be trusted."""


def _ratio(before: float, after: float) -> Optional[float]:
    if before <= 0:
        return None
    return after / before


@dataclass
class SliceDelta:
    """One slice, measured under both configurations."""

    dimension: str
    value: str
    count_a: int
    count_b: int
    goodput_a_qps: float
    goodput_b_qps: float
    p50_a_ms: float
    p50_b_ms: float
    p99_a_ms: float
    p99_b_ms: float
    loss_rate_a: float
    loss_rate_b: float
    regressed: bool = False  #: this slice got materially worse under B
    improved: bool = False  #: this slice got materially better under B
    hidden: bool = False  #: regressed while the aggregate improved

    @property
    def goodput_ratio(self) -> Optional[float]:
        return _ratio(self.goodput_a_qps, self.goodput_b_qps)

    @property
    def p99_delta_ms(self) -> float:
        return self.p99_b_ms - self.p99_a_ms

    def to_dict(self) -> dict:
        return {
            "dimension": self.dimension,
            "value": self.value,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "goodput_a_qps": round(self.goodput_a_qps, 4),
            "goodput_b_qps": round(self.goodput_b_qps, 4),
            "goodput_ratio": (
                round(self.goodput_ratio, 4)
                if self.goodput_ratio is not None
                else None
            ),
            "p50_a_ms": round(self.p50_a_ms, 4),
            "p50_b_ms": round(self.p50_b_ms, 4),
            "p99_a_ms": round(self.p99_a_ms, 4),
            "p99_b_ms": round(self.p99_b_ms, 4),
            "p99_delta_ms": round(self.p99_delta_ms, 4),
            "loss_rate_a": round(self.loss_rate_a, 6),
            "loss_rate_b": round(self.loss_rate_b, 6),
            "regressed": self.regressed,
            "improved": self.improved,
            "hidden": self.hidden,
        }


@dataclass
class ABReport:
    """The full comparison: aggregate deltas plus every shared slice."""

    label_a: str
    label_b: str
    aggregate: SliceDelta
    slices: list[SliceDelta] = field(default_factory=list)
    drift: Optional[dict] = None  #: template-mix drift between the runs
    threshold: float = 0.2  #: relative change that counts as material
    min_count: int = 1  #: slices thinner than this are reported unflagged

    @property
    def aggregate_improved(self) -> bool:
        return self.aggregate.improved

    @property
    def hidden_regressions(self) -> list[SliceDelta]:
        """Slices that got worse while the aggregate got better."""
        return [s for s in self.slices if s.hidden]

    @property
    def improved_slices(self) -> list[SliceDelta]:
        return [s for s in self.slices if s.improved]

    @property
    def regressed_slices(self) -> list[SliceDelta]:
        return [s for s in self.slices if s.regressed]

    def to_payload(self) -> dict:
        return {
            "kind": AB_REPORT_KIND,
            "version": AB_REPORT_VERSION,
            "label_a": self.label_a,
            "label_b": self.label_b,
            "threshold": self.threshold,
            "min_count": self.min_count,
            "aggregate": self.aggregate.to_dict(),
            "aggregate_improved": self.aggregate_improved,
            "hidden_regressions": [s.to_dict() for s in self.hidden_regressions],
            "slices": [s.to_dict() for s in self.slices],
            "drift": self.drift,
        }

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_payload(), indent=indent)

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    # -- markdown ---------------------------------------------------------

    def render_markdown(self, top: int = 12) -> str:
        """The human-facing report, most-moved slices first."""
        agg = self.aggregate
        lines = [
            f"# A/B workload report: `{self.label_a}` vs `{self.label_b}`",
            "",
            "## Aggregate",
            "",
            "| metric | A | B | delta |",
            "|---|---:|---:|---:|",
            _md_row(
                "goodput (q/s)", agg.goodput_a_qps, agg.goodput_b_qps, "qps"
            ),
            _md_row("p50 (ms)", agg.p50_a_ms, agg.p50_b_ms, "ms"),
            _md_row("p99 (ms)", agg.p99_a_ms, agg.p99_b_ms, "ms"),
            _md_row(
                "loss rate",
                agg.loss_rate_a,
                agg.loss_rate_b,
                "rate",
            ),
            "",
            f"Aggregate verdict: "
            f"**{'improved' if agg.improved else 'regressed' if agg.regressed else 'unchanged'}** "
            f"(material-change threshold {100 * self.threshold:.0f}%).",
            "",
        ]
        if self.hidden_regressions:
            lines += [
                "## ⚠ Hidden regressions",
                "",
                "Slices that got worse while the aggregate got better:",
                "",
            ]
            lines += _slice_table(self.hidden_regressions[:top])
        ranked = sorted(
            self.slices,
            key=lambda s: (
                -abs(s.p99_delta_ms),
                s.dimension,
                s.value,
            ),
        )
        lines += ["## Per-slice deltas", ""]
        lines += _slice_table(ranked[:top])
        if len(ranked) > top:
            lines.append(f"... {len(ranked) - top} more slices in the JSON artifact.")
        if self.drift:
            verdict = (
                "drifted — the two runs did not offer the same workload; "
                "treat per-slice deltas with suspicion"
                if self.drift.get("drifted")
                else "stable — the runs offered comparable workloads"
            )
            lines += [
                "",
                "## Workload drift",
                "",
                f"Template-mix L1 distance: "
                f"{self.drift.get('l1_share_distance', 0):.4f} ({verdict}).",
            ]
        return "\n".join(lines) + "\n"

    def write_markdown(self, path: Union[str, Path], top: int = 12) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_markdown(top))
        return path


def _md_row(name: str, a: float, b: float, unit: str) -> str:
    if unit == "rate":
        delta = b - a
        return (
            f"| {name} | {100 * a:.1f}% | {100 * b:.1f}% | "
            f"{100 * delta:+.1f}pp |"
        )
    delta = b - a
    return f"| {name} | {a:,.2f} | {b:,.2f} | {delta:+,.2f} |"


def _slice_table(deltas: list[SliceDelta]) -> list[str]:
    rows = [
        "| slice | n(A→B) | goodput A→B (q/s) | p99 A→B (ms) | flags |",
        "|---|---:|---:|---:|---|",
    ]
    for s in deltas:
        flags = []
        if s.hidden:
            flags.append("HIDDEN-REGRESSION")
        elif s.regressed:
            flags.append("regressed")
        if s.improved:
            flags.append("improved")
        rows.append(
            f"| {s.dimension}:{s.value} | {s.count_a}→{s.count_b} "
            f"| {s.goodput_a_qps:,.0f}→{s.goodput_b_qps:,.0f} "
            f"| {s.p99_a_ms:.3f}→{s.p99_b_ms:.3f} "
            f"| {' '.join(flags) or '—'} |"
        )
    rows.append("")
    return rows


def _classify(delta: SliceDelta, threshold: float, min_count: int) -> None:
    """Set improved/regressed on a delta, in place.

    A slice *improves* when goodput rises or p99 falls materially (and
    the other axis does not materially worsen); it *regresses* when
    goodput falls or p99 rises materially. Thin slices (fewer than
    ``min_count`` requests on either side) stay unflagged: one request's
    luck is not evidence.
    """
    if min(delta.count_a, delta.count_b) < min_count:
        return
    goodput_up = goodput_down = False
    ratio = delta.goodput_ratio
    if ratio is not None:
        goodput_up = ratio >= 1 + threshold
        goodput_down = ratio <= 1 - threshold
    elif delta.goodput_b_qps > 0:
        goodput_up = True  # served nothing before, something now
    p99_up = p99_down = False
    if delta.p99_a_ms > 0 and delta.p99_b_ms > 0:
        p99_up = (
            delta.p99_delta_ms > LATENCY_EPSILON_MS
            and delta.p99_b_ms >= delta.p99_a_ms * (1 + threshold)
        )
        p99_down = (
            delta.p99_delta_ms < -LATENCY_EPSILON_MS
            and delta.p99_b_ms <= delta.p99_a_ms * (1 - threshold)
        )
    delta.regressed = goodput_down or p99_up
    delta.improved = (goodput_up or p99_down) and not delta.regressed


def _delta_from(
    dimension: str,
    value: str,
    a: Optional[object],
    b: Optional[object],
    profile_a: WorkloadProfile,
    profile_b: WorkloadProfile,
) -> SliceDelta:
    def num(stats, attr, default=0.0):
        return getattr(stats, attr) if stats is not None else default

    return SliceDelta(
        dimension=dimension,
        value=value,
        count_a=int(num(a, "count", 0)),
        count_b=int(num(b, "count", 0)),
        goodput_a_qps=(
            profile_a.slice_goodput_qps(a) if a is not None else 0.0
        ),
        goodput_b_qps=(
            profile_b.slice_goodput_qps(b) if b is not None else 0.0
        ),
        p50_a_ms=num(a, "p50_ms"),
        p50_b_ms=num(b, "p50_ms"),
        p99_a_ms=num(a, "p99_ms"),
        p99_b_ms=num(b, "p99_ms"),
        loss_rate_a=num(a, "loss_rate"),
        loss_rate_b=num(b, "loss_rate"),
    )


def build_ab_report(
    profile_a: WorkloadProfile,
    profile_b: WorkloadProfile,
    label_a: str = "baseline",
    label_b: str = "candidate",
    threshold: float = 0.2,
    min_count: int = 2,
    dimensions: tuple[str, ...] = ("tenant", "template", "stage"),
) -> ABReport:
    """Diff two mined profiles into an :class:`ABReport`.

    ``threshold`` is the relative change that counts as material (0.2 =
    20%); ``min_count`` suppresses flags on slices too thin to judge.
    The ``outcome`` dimension is excluded from flagging by default —
    outcome counts move by design when admission behaviour changes —
    but any :data:`~repro.analytics.workload.DIMENSIONS` subset works.
    """
    for dimension in dimensions:
        if dimension not in DIMENSIONS:
            raise ReportError(f"unknown report dimension {dimension!r}")
    aggregate = _delta_from(
        "total", "all", profile_a.total, profile_b.total, profile_a, profile_b
    )
    _classify(aggregate, threshold, min_count=1)
    report = ABReport(
        label_a=label_a,
        label_b=label_b,
        aggregate=aggregate,
        threshold=threshold,
        min_count=min_count,
        drift=drift(profile_a, profile_b).to_dict(),
    )
    for dimension in dimensions:
        slices_a = profile_a.slices(dimension)
        slices_b = profile_b.slices(dimension)
        for value in sorted(set(slices_a) | set(slices_b)):
            delta = _delta_from(
                dimension,
                value,
                slices_a.get(value),
                slices_b.get(value),
                profile_a,
                profile_b,
            )
            _classify(delta, threshold, min_count)
            delta.hidden = delta.regressed and aggregate.improved
            report.slices.append(delta)
    return report


def looks_like_ab_report(payload: object) -> bool:
    """Is this payload shaped like an exported A/B report?"""
    return isinstance(payload, dict) and payload.get("kind") == AB_REPORT_KIND


_REQUIRED_SLICE_KEYS = (
    "dimension",
    "value",
    "count_a",
    "count_b",
    "goodput_a_qps",
    "goodput_b_qps",
    "p99_a_ms",
    "p99_b_ms",
    "regressed",
    "improved",
    "hidden",
)


def validate_ab_report(payload: object) -> list[str]:
    """Schema check for an exported A/B report; returns problems."""
    if not looks_like_ab_report(payload):
        return ["not an A/B report (kind mismatch)"]
    assert isinstance(payload, dict)
    problems: list[str] = []
    if payload.get("version") != AB_REPORT_VERSION:
        problems.append(f"unsupported report version {payload.get('version')!r}")
    for key in ("label_a", "label_b"):
        if not isinstance(payload.get(key), str) or not payload.get(key):
            problems.append(f"{key} missing")
    aggregate = payload.get("aggregate")
    if not isinstance(aggregate, dict):
        problems.append("aggregate delta missing")
    slices = payload.get("slices")
    if not isinstance(slices, list):
        return problems + ["slices list missing"]
    hidden_declared = payload.get("hidden_regressions")
    if not isinstance(hidden_declared, list):
        return problems + ["hidden_regressions list missing"]
    hidden_counted = 0
    for i, entry in enumerate(slices):
        if not isinstance(entry, dict):
            problems.append(f"slice {i}: not an object")
            continue
        missing = [k for k in _REQUIRED_SLICE_KEYS if k not in entry]
        if missing:
            problems.append(f"slice {i}: missing keys {missing}")
            continue
        if entry["hidden"]:
            hidden_counted += 1
            if not entry["regressed"]:
                problems.append(
                    f"slice {i}: hidden flag without a regression"
                )
        if entry["improved"] and entry["regressed"]:
            problems.append(
                f"slice {i}: cannot be both improved and regressed"
            )
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    if hidden_counted != len(hidden_declared):
        problems.append(
            f"hidden_regressions count {len(hidden_declared)} does not "
            f"match the {hidden_counted} hidden slices"
        )
    return problems
