"""Perf-regression watchdog: ``python -m repro watch-perf <files...>``.

Benchmark runs append one record per configuration to trajectory files
(``BENCH_hotpath.json`` and friends: ``{"bench", "config", "wall_s",
"speedup"}``), so a file accumulates a per-config *series* over time.
This module walks those series and fails — exit code 1 — when the most
recent value of a watched metric has dropped too far below the history.

Semantics, chosen to be boring and explainable in a CI log:

- Records group by ``(bench, config)`` in file order (multiple files
  concatenate, so CI can join the committed baseline trajectory with the
  artifact a fresh run just produced).
- The **current** value is the last record of a series; the **baseline**
  is the median of everything before it. Median, not mean: one historic
  outlier run must not move the bar.
- A series regresses when ``(baseline - current) / baseline`` is at
  least ``tolerance`` (default 0.2 — a 20% speedup drop). Higher is
  always fine; the watchdog is one-sided.
- Series shorter than ``min_runs`` (default 2) are skipped — with no
  history there is nothing to regress against.

The watched metric defaults to ``speedup`` (bigger is better). Wall
seconds are *not* watched by default: they measure the CI machine, not
the code, and the committed trajectories come from different hardware.

Exit codes follow the house convention: 0 pass, 1 regression(s),
2 misuse (no files, unreadable file, bad JSON shape).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Any, Optional, Sequence

from repro.obs.log import get_logger

__all__ = [
    "Regression",
    "WatchError",
    "evaluate_trajectory",
    "load_trajectories",
    "main",
]

#: Default relative drop (vs the baseline median) that fails the check.
DEFAULT_TOLERANCE = 0.2

#: Series need at least this many runs before the watchdog judges them.
DEFAULT_MIN_RUNS = 2

LOG = get_logger("repro.obs.watch")


class WatchError(ValueError):
    """Unusable watchdog input (unreadable file, wrong JSON shape)."""


@dataclass(frozen=True)
class Regression:
    """One series whose current value fell below the tolerated floor."""

    bench: str
    config: str
    metric: str
    baseline: float
    current: float

    @property
    def drop(self) -> float:
        """Relative drop of the current value below the baseline."""
        if self.baseline == 0:
            return 0.0
        return (self.baseline - self.current) / self.baseline

    def __str__(self) -> str:
        return (
            f"{self.bench}/{self.config}: {self.metric} "
            f"{self.current:g} is {100 * self.drop:.1f}% below the "
            f"baseline median {self.baseline:g}"
        )


def load_trajectories(paths: Sequence[Path]) -> list[dict[str, Any]]:
    """Concatenate trajectory files in argument order.

    Raises :class:`WatchError` when a file is missing, not JSON, or not
    a list of record objects — a watchdog that silently skips bad input
    would pass exactly when it should be failing.
    """
    records: list[dict[str, Any]] = []
    for path in paths:
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise WatchError(f"{path}: unreadable trajectory ({exc})") from exc
        if not isinstance(payload, list) or not all(
            isinstance(r, dict) for r in payload
        ):
            raise WatchError(f"{path}: trajectory must be a list of records")
        records.extend(payload)
    return records


def evaluate_trajectory(
    records: Sequence[dict[str, Any]],
    metric: str = "speedup",
    tolerance: float = DEFAULT_TOLERANCE,
    min_runs: int = DEFAULT_MIN_RUNS,
) -> list[Regression]:
    """Judge every ``(bench, config)`` series; returns the regressions.

    Records without the metric (or without a config) are ignored —
    trajectory files may mix benches with different record shapes.
    """
    if tolerance <= 0:
        raise WatchError(f"tolerance must be positive, got {tolerance}")
    series: dict[tuple[str, str], list[float]] = {}
    for record in records:
        value = record.get(metric)
        config = record.get("config")
        if value is None or config is None:
            continue
        key = (str(record.get("bench", "")), str(config))
        series.setdefault(key, []).append(float(value))
    regressions: list[Regression] = []
    for (bench, config), values in series.items():
        if len(values) < max(2, min_runs):
            LOG.debug(
                "skipping short series", bench=bench, config=config,
                runs=len(values),
            )
            continue
        baseline = median(values[:-1])
        current = values[-1]
        if baseline <= 0:
            continue
        if (baseline - current) / baseline >= tolerance:
            regressions.append(
                Regression(
                    bench=bench, config=config, metric=metric,
                    baseline=baseline, current=current,
                )
            )
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; see the module docstring for exit codes."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro watch-perf",
        description="Fail when a benchmark trajectory regresses.",
    )
    parser.add_argument(
        "files", nargs="+", help="trajectory JSON files, concatenated in order"
    )
    parser.add_argument(
        "--metric", default="speedup",
        help="record field to watch (bigger is better; default: speedup)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative drop vs the baseline median that fails "
        f"(default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--min-runs", type=int, default=DEFAULT_MIN_RUNS,
        help="minimum series length before a config is judged "
        f"(default: {DEFAULT_MIN_RUNS})",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the verdict as JSON on stdout",
    )
    args = parser.parse_args(argv)
    try:
        records = load_trajectories([Path(p) for p in args.files])
        regressions = evaluate_trajectory(
            records,
            metric=args.metric,
            tolerance=args.tolerance,
            min_runs=args.min_runs,
        )
    except WatchError as exc:
        LOG.error(str(exc))
        return 2
    if args.as_json:
        print(
            json.dumps(
                {
                    "metric": args.metric,
                    "tolerance": args.tolerance,
                    "records": len(records),
                    "regressions": [
                        {
                            "bench": r.bench,
                            "config": r.config,
                            "metric": r.metric,
                            "baseline": r.baseline,
                            "current": r.current,
                            "drop": r.drop,
                        }
                        for r in regressions
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
    for regression in regressions:
        LOG.error(str(regression))
    if regressions:
        return 1
    if not args.as_json:
        LOG.info(
            f"no regressions in {len(records)} records "
            f"(metric={args.metric}, tolerance={args.tolerance})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
