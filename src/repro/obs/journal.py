"""The query journal: every request's life, recorded as structured data.

*Query Log Compression for Workload Analytics* (PAPERS.md) treats the
query stream itself as a first-class dataset — who asked, what shape of
query, what it cost, what the platform did with it. This module is that
dataset's writer: an append-only, replayable journal that the service
layer (:class:`repro.service.service.QueryService`) and direct
:meth:`repro.system.mithrilog.MithriLogSystem.query` calls both feed.

One :class:`JournalRecord` per resolved request, carrying

- **who** — the tenant and the request's priority;
- **what** — a stable template *fingerprint* (queries generated from the
  same FT-tree template share one), with the fingerprint → query-text
  map kept once in the journal header instead of per record;
- **outcome** — the service's five-valued verdict plus the machine-
  readable refusal reason, and the execution *mode* (``exact``,
  ``sampled`` for approximate scans, ``standing`` for incremental
  standing-query evaluations);
- **cost** — queue, service and end-to-end latency on the simulated
  clock, matched lines, batch size, and the *bottleneck stage* of the
  accelerator pass the request rode (pulled from the existing
  explain/profile machinery via :attr:`QueryStats.bottleneck`);
- **window** — an optional label (``load-x2``, ``baseline``...) so one
  journal can hold several workload phases and the mining layer
  (:mod:`repro.analytics.workload`) can diff them.

The journal also counts *intake* independently of outcomes
(:meth:`QueryJournal.note_submitted`), so the exported artifact carries
the same conservation cross-check the service report does:
``ok + rejected + shed + timed_out + approximated == submitted`` per
tenant, verified by :func:`validate_journal_payload` and CI's
``repro.obs.check``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Union

from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.request import Request, Response

__all__ = [
    "JOURNAL_KIND",
    "JOURNAL_VERSION",
    "MODES",
    "OUTCOMES",
    "JournalError",
    "JournalRecord",
    "QueryJournal",
    "load_journal",
    "looks_like_journal",
    "replay_requests",
    "template_fingerprint",
    "validate_journal_payload",
]

JOURNAL_KIND = "mithrilog_query_journal"
JOURNAL_VERSION = 1

#: The five outcomes a record may carry (mirrors ``repro.service.request
#: .Outcome`` without importing the service layer at module load).
OUTCOMES = ("ok", "rejected", "shed", "timed_out", "approximated")

#: Execution modes a record may carry: a full scan, a seeded sampled
#: scan (the approximate admission class), or an incremental
#: standing-query evaluation over newly sealed pages.
MODES = ("exact", "sampled", "standing")

#: Bottleneck stages :attr:`QueryStats.bottleneck` can name, plus ""
#: for requests that never reached an accelerator pass.
STAGES = ("", "flash", "decompress", "filter", "host", "index")


class JournalError(ValueError):
    """A journal artifact that cannot be trusted (schema or math)."""


def template_fingerprint(query_text: str) -> str:
    """Stable 12-hex-digit fingerprint of a query's canonical text.

    Queries built from the same template string collapse onto one
    fingerprint, which is what makes per-template slicing possible
    without shipping the full text on every record. sha1 rather than
    ``hash()``: stable across processes and ``PYTHONHASHSEED``.
    """
    return hashlib.sha1(query_text.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class JournalRecord:
    """One resolved request, compact enough to keep millions of."""

    seq: int  #: append order within the journal (0-based)
    window: str  #: workload phase label ("" outside any window)
    tenant: str
    template: str  #: :func:`template_fingerprint` of the query text
    outcome: str  #: "ok" | "rejected" | "shed" | "timed_out" | "approximated"
    reason: str  #: refusal cause ("" for OK)
    priority: int
    arrival_s: float  #: request's arrival offset within its run
    queue_s: float  #: arrival -> service start (simulated)
    service_s: float  #: the shared accelerator pass (simulated)
    latency_s: float  #: queue_s + service_s
    completed_at_s: float  #: absolute simulated completion time
    matches: int  #: matched lines (OK only)
    batch_size: int  #: queries sharing the pass (0 = never scheduled)
    stage: str  #: bottleneck stage of the pass ("" when no pass ran)
    deadline_s: Optional[float] = None  #: the request's deadline knob
    degraded: bool = False  #: answered with at least one shard down
    mode: str = "exact"  #: "exact" | "sampled" | "standing"
    sample_fraction: Optional[float] = None  #: page fraction when sampled

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "JournalRecord":
        try:
            return cls(**payload)
        except TypeError as exc:
            raise JournalError(f"malformed journal record: {exc}") from exc


@dataclass
class _TenantTally:
    """Intake vs outcome accounting for one tenant (conservation)."""

    submitted: int = 0
    ok: int = 0
    rejected: int = 0
    shed: int = 0
    timed_out: int = 0
    approximated: int = 0

    def conserved(self) -> bool:
        return (
            self.ok + self.rejected + self.shed + self.timed_out
            + self.approximated
            == self.submitted
        )


class QueryJournal:
    """Append-only journal of resolved requests, with JSON export.

    The journal never mutates or reorders what it holds — ``records``
    only grows, and :meth:`write` serialises exactly what was appended.
    Attach one to a :class:`~repro.service.service.QueryService` (the
    ``journal=`` constructor knob) or a :class:`~repro.system.mithrilog
    .MithriLogSystem` and every request that resolves lands here.

    ``max_entries`` bounds memory for long-running services: when set,
    the journal keeps only the newest ``max_entries`` records as a ring
    and counts the rest in :attr:`evicted`. Aggregate per-tenant
    tallies are kept separately from the records, so conservation
    accounting stays exact no matter how many records were evicted;
    sequence numbers keep counting total appends.
    """

    def __init__(
        self,
        meta: Optional[dict] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries <= 0:
            raise JournalError("max_entries must be positive when set")
        self.records: list[JournalRecord] = []
        self.templates: dict[str, str] = {}  #: fingerprint -> query text
        self.meta: dict = dict(meta or {})
        self.window: str = ""
        self.max_entries = max_entries
        self.evicted = 0  #: records dropped by ring retention
        self._appended = 0  #: total appends ever (sequence source)
        self._tallies: dict[str, _TenantTally] = {}
        registry = get_registry()
        if registry is not None:
            self._m_records = registry.counter(
                "mithrilog_workload_journal_records_total",
                "Journal records appended, by outcome",
                labelnames=("outcome",),
            )
            self._m_templates = registry.gauge(
                "mithrilog_workload_templates",
                "Distinct query templates the journal has seen",
            )
        else:
            self._m_records = None
            self._m_templates = None

    # -- writing ----------------------------------------------------------

    def begin_window(self, label: str) -> None:
        """Stamp subsequent records with ``label`` (a workload phase)."""
        self.window = label

    def note_submitted(self, tenant: str) -> None:
        """Count intake *before* any outcome exists (conservation)."""
        self._tallies.setdefault(tenant, _TenantTally()).submitted += 1

    def register_template(self, query_text: str) -> str:
        """Intern a query's text; returns its fingerprint."""
        fingerprint = template_fingerprint(query_text)
        if fingerprint not in self.templates:
            self.templates[fingerprint] = query_text
            if self._m_templates is not None:
                self._m_templates.set(len(self.templates))
        return fingerprint

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record should carry."""
        return self._appended

    def append(self, record: JournalRecord) -> None:
        """Append one pre-built record (the low-level writer)."""
        if record.outcome not in OUTCOMES:
            raise JournalError(f"unknown outcome {record.outcome!r}")
        self.records.append(record)
        self._appended += 1
        if (
            self.max_entries is not None
            and len(self.records) > self.max_entries
        ):
            overflow = len(self.records) - self.max_entries
            del self.records[:overflow]
            self.evicted += overflow
        tally = self._tallies.setdefault(record.tenant, _TenantTally())
        setattr(tally, record.outcome, getattr(tally, record.outcome) + 1)
        if self._m_records is not None:
            self._m_records.inc(outcome=record.outcome)

    def observe(self, response: "Response") -> JournalRecord:
        """Append a record for a resolved service response."""
        request = response.request
        fingerprint = self.register_template(str(request.query))
        record = JournalRecord(
            seq=self.next_seq,
            window=self.window,
            tenant=request.tenant,
            template=fingerprint,
            outcome=response.outcome.value,
            reason=response.reason,
            priority=request.priority,
            arrival_s=request.arrival_s,
            queue_s=response.queue_time_s,
            service_s=response.service_time_s,
            latency_s=response.latency_s,
            completed_at_s=response.completed_at_s,
            matches=response.matches,
            batch_size=response.batch_size,
            stage=response.bottleneck,
            deadline_s=request.deadline_s,
            degraded=response.degraded,
            mode="sampled" if response.outcome.value == "approximated"
            else "exact",
            # the opt-in is recorded even when the request settled
            # exactly, so replay re-offers the same eligibility
            sample_fraction=request.sample_fraction,
        )
        self.append(record)
        return record

    def observe_direct(
        self,
        query_text: str,
        *,
        latency_s: float,
        matches: int,
        stage: str,
        completed_at_s: float,
        batch_size: int = 1,
        tenant: str = "_direct",
        mode: str = "exact",
        sample_fraction: Optional[float] = None,
    ) -> JournalRecord:
        """Append a record for a query that bypassed the service layer.

        Direct :meth:`MithriLogSystem.query` calls have no admission
        story — they always execute — so the record is OK by
        construction, with the whole latency attributed to service time.
        ``mode`` distinguishes exact scans from seeded sampled scans
        and incremental standing-query evaluations.
        """
        if mode not in MODES:
            raise JournalError(f"unknown execution mode {mode!r}")
        self.note_submitted(tenant)
        fingerprint = self.register_template(query_text)
        record = JournalRecord(
            seq=self.next_seq,
            window=self.window,
            tenant=tenant,
            template=fingerprint,
            outcome="ok",
            reason="",
            priority=0,
            arrival_s=0.0,
            queue_s=0.0,
            service_s=latency_s,
            latency_s=latency_s,
            completed_at_s=completed_at_s,
            matches=matches,
            batch_size=batch_size,
            stage=stage,
            mode=mode,
            sample_fraction=sample_fraction,
        )
        self.append(record)
        return record

    # -- reading ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self.records)

    def windows(self) -> list[str]:
        """Window labels in first-appearance order."""
        seen: list[str] = []
        for record in self.records:
            if record.window not in seen:
                seen.append(record.window)
        return seen

    def in_window(self, label: Optional[str]) -> list[JournalRecord]:
        """Records of one window (``None`` means all of them)."""
        if label is None:
            return list(self.records)
        return [r for r in self.records if r.window == label]

    def tenant_tallies(self) -> dict[str, dict[str, int]]:
        return {
            tenant: {
                "submitted": tally.submitted,
                "ok": tally.ok,
                "rejected": tally.rejected,
                "shed": tally.shed,
                "timed_out": tally.timed_out,
                "approximated": tally.approximated,
            }
            for tenant, tally in sorted(self._tallies.items())
        }

    def conserved(self) -> bool:
        """Every noted submission has exactly one journalled outcome."""
        return all(t.conserved() for t in self._tallies.values())

    # -- serialisation ----------------------------------------------------

    def to_payload(self) -> dict:
        payload = {
            "kind": JOURNAL_KIND,
            "version": JOURNAL_VERSION,
            "meta": self.meta,
            "templates": dict(sorted(self.templates.items())),
            "tenants": self.tenant_tallies(),
            "records": [r.to_dict() for r in self.records],
        }
        if self.evicted:
            payload["evicted"] = self.evicted
        return payload

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=False)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryJournal":
        problems = validate_journal_payload(payload)
        if problems:
            raise JournalError("; ".join(problems))
        journal = cls(meta=payload.get("meta"))
        journal.templates = dict(payload["templates"])
        for entry in payload["records"]:
            journal.records.append(JournalRecord.from_dict(entry))
        journal.evicted = int(payload.get("evicted", 0))
        journal._appended = journal.evicted + len(journal.records)
        for tenant, tally in payload["tenants"].items():
            journal._tallies[tenant] = _TenantTally(
                submitted=tally["submitted"],
                ok=tally["ok"],
                rejected=tally["rejected"],
                shed=tally["shed"],
                timed_out=tally["timed_out"],
                approximated=tally.get("approximated", 0),
            )
        return journal


def load_journal(path: Union[str, Path]) -> QueryJournal:
    """Read and validate a journal artifact from disk."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise JournalError(f"{path}: unreadable journal ({exc})") from exc
    return QueryJournal.from_payload(payload)


def looks_like_journal(payload: object) -> bool:
    """Is this payload shaped like an exported journal?"""
    return isinstance(payload, dict) and payload.get("kind") == JOURNAL_KIND


_NUMERIC_FIELDS = (
    "arrival_s",
    "queue_s",
    "service_s",
    "latency_s",
    "completed_at_s",
)


def validate_journal_payload(payload: object) -> list[str]:
    """Schema + conservation check; returns human-readable problems.

    An empty list means the artifact is trustworthy: every record is
    well-formed, every fingerprint resolves in the template map, the
    per-tenant tallies reproduce the records, and intake conservation
    holds for every tenant.
    """
    if not looks_like_journal(payload):
        return ["not a query journal (kind mismatch)"]
    assert isinstance(payload, dict)
    problems: list[str] = []
    if payload.get("version") != JOURNAL_VERSION:
        problems.append(
            f"unsupported journal version {payload.get('version')!r}"
        )
    templates = payload.get("templates")
    records = payload.get("records")
    tenants = payload.get("tenants")
    if not isinstance(templates, dict):
        return problems + ["templates map missing"]
    if not isinstance(records, list):
        return problems + ["records list missing"]
    if not isinstance(tenants, dict):
        return problems + ["tenant tallies missing"]

    recount: dict[str, _TenantTally] = {}
    for i, entry in enumerate(records):
        if not isinstance(entry, dict):
            problems.append(f"record {i}: not an object")
            continue
        outcome = entry.get("outcome")
        if outcome not in OUTCOMES:
            problems.append(f"record {i}: unknown outcome {outcome!r}")
            continue
        if entry.get("template") not in templates:
            problems.append(
                f"record {i}: fingerprint {entry.get('template')!r} "
                "missing from the template map"
            )
        if entry.get("stage") not in STAGES:
            problems.append(
                f"record {i}: unknown bottleneck stage {entry.get('stage')!r}"
            )
        if outcome in ("ok", "approximated") and entry.get("stage") == "":
            problems.append(
                f"record {i}: answered record without a bottleneck stage"
            )
        mode = entry.get("mode", "exact")
        if mode not in MODES:
            problems.append(f"record {i}: unknown execution mode {mode!r}")
        elif outcome == "approximated" and mode != "sampled":
            problems.append(
                f"record {i}: approximated outcome with mode {mode!r} "
                "(must be sampled)"
            )
        if mode == "sampled":
            fraction = entry.get("sample_fraction")
            if (
                not isinstance(fraction, (int, float))
                or not 0.0 < fraction < 1.0
            ):
                problems.append(
                    f"record {i}: sampled record needs sample_fraction "
                    "in (0, 1)"
                )
        for fieldname in _NUMERIC_FIELDS:
            value = entry.get(fieldname)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"record {i}: {fieldname} must be a non-negative number"
                )
        latency = entry.get("latency_s")
        queue = entry.get("queue_s")
        service = entry.get("service_s")
        if (
            isinstance(latency, (int, float))
            and isinstance(queue, (int, float))
            and isinstance(service, (int, float))
            and abs(latency - (queue + service)) > 1e-9
        ):
            problems.append(
                f"record {i}: latency_s != queue_s + service_s"
            )
        tally = recount.setdefault(str(entry.get("tenant")), _TenantTally())
        setattr(tally, outcome, getattr(tally, outcome) + 1)
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break

    evicted = payload.get("evicted", 0)
    if not isinstance(evicted, int) or evicted < 0:
        problems.append("evicted must be a non-negative integer")
        evicted = 0
    shortfall = 0
    for tenant, declared in tenants.items():
        counted = recount.get(tenant, _TenantTally())
        for outcome in OUTCOMES:
            # older journals predate the approximated outcome; absent
            # means zero for it, never for the original four
            declared_n = declared.get(
                outcome, 0 if outcome == "approximated" else None
            )
            counted_n = getattr(counted, outcome)
            if not isinstance(declared_n, int):
                problems.append(
                    f"tenant {tenant}: declared {outcome} tally "
                    f"{declared_n!r} is not an integer"
                )
                continue
            if evicted == 0 and declared_n != counted_n:
                problems.append(
                    f"tenant {tenant}: declared {outcome} tally "
                    f"{declared_n} != {counted_n} counted from records"
                )
            elif declared_n < counted_n:
                problems.append(
                    f"tenant {tenant}: declared {outcome} tally "
                    f"{declared_n} < {counted_n} counted from retained "
                    "records"
                )
            else:
                shortfall += declared_n - counted_n
        total = sum(declared.get(o, 0) for o in OUTCOMES)
        if declared.get("submitted") != total:
            problems.append(
                f"tenant {tenant}: conservation violated — submitted "
                f"{declared.get('submitted')} != sum of outcomes {total}"
            )
    if evicted and shortfall != evicted:
        problems.append(
            f"evicted count {evicted} does not match the {shortfall} "
            "records missing from the declared tallies"
        )
    for tenant in recount:
        if tenant not in tenants:
            problems.append(f"tenant {tenant}: records exist but no tally")
    return problems


def replay_requests(
    journal: Union[QueryJournal, dict],
    windows: Optional[Iterable[str]] = None,
) -> "list[Request]":
    """Rebuild the submitted workload as fresh :class:`Request` objects.

    This is what makes the journal *replayable*: an A/B harness can
    re-offer the exact recorded traffic (tenant, template text,
    priority, deadline, arrival offset) to a differently-configured
    service. Outcomes are deliberately not replayed — they are what the
    B run exists to re-measure.
    """
    from repro.core.query import parse_query
    from repro.service.request import Request

    if isinstance(journal, dict):
        journal = QueryJournal.from_payload(journal)
    wanted = set(windows) if windows is not None else None
    compiled: dict[str, object] = {}
    requests: list[Request] = []
    for record in journal.records:
        if wanted is not None and record.window not in wanted:
            continue
        text = journal.templates[record.template]
        if text not in compiled:
            compiled[text] = parse_query(text)
        requests.append(
            Request(
                tenant=record.tenant,
                query=compiled[text],
                priority=record.priority,
                deadline_s=record.deadline_s,
                arrival_s=record.arrival_s,
                sample_fraction=record.sample_fraction,
            )
        )
    requests.sort(key=lambda r: r.arrival_s)
    return requests
