"""Query EXPLAIN / EXPLAIN ANALYZE: plan trees and bottleneck attribution.

The interpretation layer over the raw telemetry. PR 2 gave every query
per-stage simulated times and spans; PR 3 gave it a planner, a parallel
executor and a page cache — but nothing answered the operator's actual
question: *why* was this query slow, which simulated resource paced it,
and how far off were the planner's estimates? This module is that
answer, the shape analytics engines ship as ``EXPLAIN ANALYZE``:

- :class:`PlanNode` — one node of the plan tree (the root query, the
  index access, the streaming scan, its four pipeline stages), each
  carrying ``estimated`` values from the cost-based planner and — after
  execution — ``actual`` values from :class:`~repro.system.mithrilog
  .QueryStats`.
- :class:`ExplainReport` — the tree plus the interpretation: per-stage
  **utilization** (busy fraction of the scan window) and **bottleneck
  attribution**. The scan stages stream concurrently, so elapsed scan
  time is their max, not their sum; attribution therefore assigns the
  whole scan window to the stage that paced it (the bottleneck), and
  the attribution values sum exactly to the simulated scan time — the
  invariant :func:`validate_explain_report` and CI enforce.

Determinism contract: everything in :meth:`ExplainReport.canonical` is
a pure function of the store, the query and the seed — identical at any
worker count and with a cold or warm page cache (both only move host
wall-clock). Cache hit/miss counts and measured host-profile wall times
are real observations that *do* vary run to run; they live only in the
full :meth:`ExplainReport.to_dict` rendering.

This module deliberately imports nothing from ``repro.system`` — the
system builds reports through :func:`build_explain` (duck-typed against
``QueryPlan`` / ``QueryOutcome``), keeping the obs layer import-cycle
free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional, Union

__all__ = [
    "ExplainError",
    "ExplainReport",
    "PlanNode",
    "build_explain",
    "validate_explain_report",
]


class ExplainError(ValueError):
    """A malformed explain report (bad tree, attribution mismatch)."""


#: Scan pipeline stages in streaming order: (breakdown key, span name).
_SCAN_STAGES = (
    ("flash", "flash_read"),
    ("decompress", "decompress"),
    ("filter", "filter"),
    ("host", "host_transfer"),
)

#: Significant digits kept in canonical renderings. Simulated times are
#: exact IEEE arithmetic, but 12 significant digits keeps golden files
#: stable against representation noise without hiding real changes.
_CANONICAL_DIGITS = "{:.12g}"


def _sig(value: float) -> float:
    """Round to the canonical precision (stable across json round-trips)."""
    return float(_CANONICAL_DIGITS.format(float(value)))


def _round_values(mapping: dict[str, Any]) -> dict[str, Any]:
    return {
        key: _sig(value) if isinstance(value, float) else value
        for key, value in mapping.items()
    }


@dataclass
class PlanNode:
    """One node of a query plan tree.

    ``kind`` classifies the node (``root``, ``access``, ``pipeline``,
    ``stage``); ``estimated`` holds planner predictions, ``actual`` the
    post-execution measurements (``None`` for plain EXPLAIN). Values are
    scalars only — the renderers rely on that.
    """

    name: str
    kind: str
    detail: str = ""
    estimated: dict[str, Any] = field(default_factory=dict)
    actual: Optional[dict[str, Any]] = None
    children: list["PlanNode"] = field(default_factory=list)

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["PlanNode"]:
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def to_dict(self, canonical: bool = False) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.detail:
            out["detail"] = self.detail
        if self.estimated:
            out["estimated"] = (
                _round_values(self.estimated) if canonical else dict(self.estimated)
            )
        if self.actual is not None:
            out["actual"] = (
                _round_values(self.actual) if canonical else dict(self.actual)
            )
        if self.children:
            out["children"] = [c.to_dict(canonical=canonical) for c in self.children]
        return out


@dataclass
class ExplainReport:
    """A query's plan tree plus bottleneck interpretation."""

    query: str
    mode: str  #: ``"estimate"`` (EXPLAIN) or ``"analyze"`` (EXPLAIN ANALYZE)
    plan: PlanNode
    bottleneck: Optional[str] = None
    #: stage -> attributed simulated seconds; the pipelined scan window
    #: belongs wholly to its pacing stage, so values sum to scan time.
    attribution: dict[str, float] = field(default_factory=dict)
    #: stage -> busy fraction of the scan window (bottleneck == 1.0).
    utilization: dict[str, float] = field(default_factory=dict)
    #: compiled-program shape (query count, hardware/software mode).
    program: dict[str, Any] = field(default_factory=dict)
    #: deterministic per-stage counts (calls / units) for the scan.
    profile: dict[str, dict[str, int]] = field(default_factory=dict)
    #: page-cache behaviour during the run — real observation, varies
    #: cold vs warm, excluded from the canonical form.
    cache: dict[str, int] = field(default_factory=dict)
    #: measured host wall-clock per stage — excluded from canonical.
    host_profile: dict[str, dict[str, float]] = field(default_factory=dict)

    # -- renderings ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The full report (canonical fields + volatile observations)."""
        out = self.canonical()
        out["profile"] = {k: dict(v) for k, v in sorted(self.profile.items())}
        if self.cache:
            out["cache"] = dict(self.cache)
        if self.host_profile:
            out["host_profile"] = {
                k: dict(v) for k, v in sorted(self.host_profile.items())
            }
        return out

    def canonical(self) -> dict[str, Any]:
        """The deterministic subset: identical for the same store, query
        and seed at any worker count, cache-cold or cache-warm.

        This is what the golden-file stability tests compare.
        """
        out: dict[str, Any] = {
            "query": self.query,
            "mode": self.mode,
            "plan": self.plan.to_dict(canonical=True),
        }
        if self.program:
            out["program"] = dict(self.program)
        if self.mode == "analyze":
            out["bottleneck"] = self.bottleneck
            out["attribution"] = _round_values(self.attribution)
            out["utilization"] = _round_values(self.utilization)
        return out

    def to_json(self, canonical: bool = False) -> str:
        payload = self.canonical() if canonical else self.to_dict()
        return json.dumps(payload, indent=2, sort_keys=True)

    def write(self, path: Union[str, Path]) -> Path:
        """Write the full report as a JSON artifact; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    def render(self) -> str:
        """The human tree, the way ``EXPLAIN`` output reads in a shell."""
        title = "EXPLAIN ANALYZE" if self.mode == "analyze" else "EXPLAIN"
        lines = [f"{title} {self.query}"]
        if self.plan.detail:
            lines.append(f"plan: {self.plan.detail}")
        lines.extend(self._render_node(self.plan, prefix=""))
        if self.mode == "analyze":
            lines.append(
                f"bottleneck: {self.bottleneck} "
                f"({100 * self.utilization.get(self.bottleneck, 0.0):.0f}% of "
                "the scan window)"
            )
            if self.cache:
                lines.append(
                    f"cache: {self.cache.get('hits', 0)} hits / "
                    f"{self.cache.get('misses', 0)} misses"
                )
        return "\n".join(lines)

    def _render_node(self, node: PlanNode, prefix: str) -> list[str]:
        lines: list[str] = []
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            joint = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            lines.append(prefix + joint + self._describe(child))
            lines.extend(self._render_node(child, prefix + extension))
        return lines

    @staticmethod
    def _describe(node: PlanNode) -> str:
        parts = [f"{node.name:<14}"]
        actual = node.actual or {}
        estimated = node.estimated
        time_s = actual.get("time_s")
        if time_s is not None:
            parts.append(f"{time_s * 1e3:8.3f} ms")
        elif "time_s" in estimated:
            parts.append(f"~{estimated['time_s'] * 1e3:7.3f} ms (est)")
        if "utilization" in actual:
            parts.append(f"util {100 * actual['utilization']:3.0f}%")
        if "pages" in estimated or "pages" in actual:
            est = estimated.get("pages")
            act = actual.get("pages")
            if est is not None and act is not None:
                parts.append(f"pages est {est} / actual {act}")
            elif act is not None:
                parts.append(f"{act} pages")
            elif est is not None:
                parts.append(f"~{est} pages (est)")
        for key, unit in (
            ("bytes", "B"),
            ("lines_seen", "lines"),
            ("matches", "matches"),
        ):
            if key in actual:
                parts.append(f"{actual[key]:,} {unit}")
        if node.detail and node.kind != "root":
            parts.append(f"· {node.detail}")
        return "  ".join(parts)


# ---------------------------------------------------------------------------
# Building a report from planner output and query stats
# ---------------------------------------------------------------------------


def build_explain(
    query_text: str,
    plan: Any,
    stats: Any = None,
    matches: Optional[int] = None,
    program: Optional[dict[str, Any]] = None,
    cache: Optional[dict[str, int]] = None,
    host_profile: Optional[dict[str, dict[str, float]]] = None,
) -> ExplainReport:
    """Assemble an :class:`ExplainReport`.

    ``plan`` is a :class:`repro.system.planner.QueryPlan`; ``stats`` a
    :class:`repro.system.mithrilog.QueryStats` when the query actually
    ran (ANALYZE), else ``None`` (plain EXPLAIN). Duck-typed so this
    module never imports the system layer.
    """
    analyzed = stats is not None
    root = PlanNode(
        name="query",
        kind="root",
        detail=(
            f"{'index path' if plan.use_index else 'full scan'} — {plan.reason}"
        ),
        estimated={
            "use_index": bool(plan.use_index),
            "candidate_pages": plan.estimated_candidate_pages,
            "total_pages": plan.total_pages,
            "selectivity": plan.estimated_selectivity,
            "index_path_s": plan.estimated_index_path_s,
            "full_scan_s": plan.estimated_scan_s,
        },
    )
    index_node = PlanNode(
        name="index_lookup",
        kind="access",
        estimated={
            "pages": plan.estimated_candidate_pages,
            "time_s": plan.estimated_index_s,
        },
    )
    scan_node = PlanNode(
        name="scan",
        kind="pipeline",
        estimated={
            "time_s": plan.estimated_index_path_s - plan.estimated_index_s
            if plan.use_index
            else plan.estimated_scan_s,
        },
    )
    root.children = [index_node, scan_node]
    report = ExplainReport(
        query=query_text,
        mode="analyze" if analyzed else "estimate",
        plan=root,
        program=dict(program) if program else {},
    )
    if not analyzed:
        return report

    root.actual = {
        "elapsed_s": stats.elapsed_s,
        "path": "full_scan" if stats.index_full_scan else "index",
    }
    if matches is not None:
        root.actual["matches"] = matches
    index_node.actual = {
        "pages": stats.candidate_pages,
        "time_s": stats.index_time_s,
        "tokens_looked_up": stats.index_tokens_looked_up,
        "root_visits": stats.index_root_visits,
        "full_scan": bool(stats.index_full_scan),
        "pruned_pages": stats.total_pages - stats.candidate_pages,
    }
    breakdown = stats.breakdown
    scan_time = stats.scan_time_s
    bottleneck = stats.bottleneck
    scan_node.actual = {
        "time_s": scan_time,
        "pages": stats.pages_read,
        "bottleneck": bottleneck,
    }
    stage_values = {
        "flash_read": {
            "bytes": stats.bytes_from_flash, "pages": stats.pages_read
        },
        "decompress": {"bytes": stats.bytes_decompressed},
        "filter": {
            "lines_seen": stats.lines_seen, "lines_kept": stats.lines_kept
        },
        "host_transfer": {"bytes": stats.bytes_to_host},
    }
    for stage_key, span_name in _SCAN_STAGES:
        stage_time = breakdown[stage_key]
        util = stage_time / scan_time if scan_time > 0 else 0.0
        actual: dict[str, Any] = {"time_s": stage_time, "utilization": util}
        actual.update(stage_values[span_name])
        scan_node.children.append(
            PlanNode(name=span_name, kind="stage", actual=actual)
        )
        report.utilization[stage_key] = util
        # the streaming pipeline's window belongs to the stage pacing it
        report.attribution[stage_key] = (
            scan_time if stage_key == bottleneck else 0.0
        )
    report.bottleneck = bottleneck
    report.profile = dict(getattr(stats, "profile", {}) or {})
    if cache:
        report.cache = dict(cache)
    if host_profile:
        report.host_profile = dict(host_profile)
    return report


# ---------------------------------------------------------------------------
# Artifact validation (what `python -m repro.obs.check` runs)
# ---------------------------------------------------------------------------


def looks_like_explain(payload: Any) -> bool:
    """True when a JSON payload has an explain report's signature keys."""
    return (
        isinstance(payload, dict)
        and "plan" in payload
        and "mode" in payload
        and "query" in payload
    )


def validate_explain_report(payload: dict[str, Any]) -> int:
    """Check a serialised explain report; returns the plan-node count.

    Raises :class:`ExplainError` when the tree is malformed or — for
    ANALYZE reports — when the bottleneck attribution does not sum to
    the scan node's simulated time (the invariant the acceptance tests
    and CI artifact validation pin down).
    """
    if not looks_like_explain(payload):
        raise ExplainError("not an explain report (missing query/mode/plan)")
    if payload["mode"] not in ("estimate", "analyze"):
        raise ExplainError(f"unknown explain mode {payload['mode']!r}")

    def walk(node: Any) -> Iterator[dict[str, Any]]:
        if not isinstance(node, dict) or "name" not in node or "kind" not in node:
            raise ExplainError(f"malformed plan node: {node!r}")
        yield node
        for child in node.get("children", ()):
            yield from walk(child)

    nodes = list(walk(payload["plan"]))
    if payload["mode"] == "analyze":
        scan = next((n for n in nodes if n["name"] == "scan"), None)
        if scan is None or "actual" not in scan:
            raise ExplainError("analyze report lacks an executed scan node")
        scan_time = float(scan["actual"].get("time_s", 0.0))
        attribution = payload.get("attribution")
        if not isinstance(attribution, dict) or not attribution:
            raise ExplainError("analyze report lacks bottleneck attribution")
        attributed = sum(float(v) for v in attribution.values())
        tolerance = max(1e-12, 1e-6 * max(scan_time, attributed))
        if abs(attributed - scan_time) > tolerance:
            raise ExplainError(
                f"attribution sums to {attributed!r}, scan time is "
                f"{scan_time!r}"
            )
        for stage, value in payload.get("utilization", {}).items():
            if not -1e-9 <= float(value) <= 1.0 + 1e-9:
                raise ExplainError(
                    f"utilization for {stage!r} outside [0, 1]: {value!r}"
                )
    return len(nodes)
