"""The incident flight recorder: evidence capture at alert-fire time.

When a burn-rate alert (:mod:`repro.obs.slo`) fires, the question a
responder asks is always the same: *what was the system doing right
before this?* This module answers it by snapshotting an **incident
bundle** the moment an alert enters the firing state:

- the alert itself (SLO definition, burn rates, budget position),
- the sampled metric series around the incident window
  (:class:`~repro.obs.series.MetricSampler`),
- the tail of the query journal inside the window, plus tenant tallies,
- active fault-log entries (what the harness injected),
- the utilization timeline (``mithrilog_util_busy_fraction``),
- the hottest *slow* template in the window with its EXPLAIN plan.

Bundles are JSON artifacts (``kind: mithrilog_incident_bundle``)
validated by :func:`validate_incident_bundle` (wired into
``repro.obs.check``), plus a rendered markdown incident report for
humans. Everything is keyed by simulated time, so two runs with the
same seed write byte-identical bundles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.obs.explain import looks_like_explain, validate_explain_report
from repro.obs.journal import OUTCOMES
from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.obs.slo import SLO, Alert, AlertState, SLOMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.reporting import FaultLog
    from repro.obs.journal import QueryJournal
    from repro.obs.series import MetricSampler
    from repro.system.mithrilog import MithriLogSystem

__all__ = [
    "INCIDENT_KIND",
    "INCIDENT_VERSION",
    "FlightRecorder",
    "looks_like_incident_bundle",
    "validate_incident_bundle",
    "render_markdown",
    "write_bundle",
]

INCIDENT_KIND = "mithrilog_incident_bundle"
INCIDENT_VERSION = 1

LOG = get_logger("repro.obs.recorder")


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q / 100.0 * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class FlightRecorder:
    """Captures an incident bundle whenever a monitored alert fires.

    Construct it over the same monitor/sampler/journal the live run
    uses; it registers itself on ``monitor.on_transition`` and builds
    one bundle per firing transition. ``out_dir`` (optional) writes
    each bundle to disk as JSON + markdown; bundles are always kept in
    memory on :attr:`bundles` regardless.
    """

    def __init__(
        self,
        monitor: SLOMonitor,
        sampler: Optional["MetricSampler"] = None,
        journal: Optional["QueryJournal"] = None,
        fault_logs: Sequence["FaultLog"] = (),
        system: Optional["MithriLogSystem"] = None,
        lookback_s: float = 0.25,
        journal_tail: int = 200,
        out_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.monitor = monitor
        self.sampler = sampler if sampler is not None else monitor.sampler
        self.journal = journal
        self.fault_logs = list(fault_logs)
        self.system = system
        self.lookback_s = float(lookback_s)
        self.journal_tail = int(journal_tail)
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.bundles: list[dict] = []
        self.written: list[Path] = []
        monitor.on_transition.append(self._on_transition)
        registry = get_registry()
        self._m_incidents = (
            registry.counter(
                "mithrilog_slo_incidents_recorded_total",
                "Incident bundles captured by the flight recorder",
            )
            if registry is not None
            else None
        )

    # -- the listener ------------------------------------------------------

    def _on_transition(
        self, slo: SLO, alert: Alert, state: AlertState, now_s: float
    ) -> None:
        if state is not AlertState.FIRING:
            return
        bundle = self.capture(slo, alert, now_s)
        self.bundles.append(bundle)
        if self._m_incidents is not None:
            self._m_incidents.inc()
        if self.out_dir is not None:
            self.written.extend(write_bundle(bundle, self.out_dir))

    # -- bundle assembly ---------------------------------------------------

    def capture(self, slo: SLO, alert: Alert, now_s: float) -> dict:
        """Build the incident bundle for one firing alert."""
        start_s = now_s - self.lookback_s
        bundle: dict = {
            "kind": INCIDENT_KIND,
            "version": INCIDENT_VERSION,
            "fired_at_s": now_s,
            "window": {"start_s": start_s, "end_s": now_s},
            "slo": slo.to_dict(),
            "alert": alert.to_dict(),
            "monitor": {
                "states": {
                    s.name: self.monitor.state_of(s.name).value
                    for s in self.monitor.slos
                },
                "budgets": [
                    self.monitor.budget(s.name) for s in self.monitor.slos
                ],
            },
        }
        if self.sampler is not None:
            bundle["series"] = self.sampler.to_dict(start_s, now_s)
            bundle["utilization"] = self._utilization(start_s, now_s)
        bundle["journal"] = self._journal_tail(start_s, now_s)
        bundle["faults"] = self._faults()
        slow = self._slow_template(start_s, now_s)
        if slow is not None:
            bundle["slow_template"] = slow
        return bundle

    def _utilization(self, start_s: float, end_s: float) -> list[dict]:
        assert self.sampler is not None
        out = []
        for series in self.sampler.all_series():
            if series.name != "mithrilog_util_busy_fraction":
                continue
            out.append(series.to_dict(start_s, end_s))
        return out

    def _journal_tail(self, start_s: float, end_s: float) -> dict:
        if self.journal is None:
            return {"available": False}
        tail = [
            r.to_dict()
            for r in self.journal.records
            if start_s <= r.completed_at_s <= end_s
        ]
        truncated = max(0, len(tail) - self.journal_tail)
        if truncated:
            tail = tail[-self.journal_tail:]
        return {
            "available": True,
            "records": tail,
            "truncated": truncated,
            "tenants": self.journal.tenant_tallies(),
            "evicted": getattr(self.journal, "evicted", 0),
        }

    def _faults(self) -> dict:
        events = []
        for log in self.fault_logs:
            for event in log.events:
                events.append(
                    {
                        "kind": event.kind,
                        "op_index": event.op_index,
                        "address": event.address,
                        "detail": event.detail,
                    }
                )
        by_kind: dict[str, int] = {}
        for event in events:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        return {"events": events, "by_kind": dict(sorted(by_kind.items()))}

    def _slow_template(
        self, start_s: float, end_s: float
    ) -> Optional[dict]:
        """The window's slowest template by p99 service time, with EXPLAIN."""
        if self.journal is None:
            return None
        pools: dict[str, list[float]] = {}
        for record in self.journal.records:
            if record.outcome != "ok":
                continue
            if not start_s <= record.completed_at_s <= end_s:
                continue
            pools.setdefault(record.template, []).append(record.service_s)
        if not pools:
            return None
        ranked = []
        for template, services in pools.items():
            services.sort()
            ranked.append(
                (_percentile(services, 99), len(services), template)
            )
        ranked.sort(key=lambda item: (-item[0], -item[1], item[2]))
        p99_service, count, template = ranked[0]
        entry: dict = {
            "template": template,
            "text": self.journal.templates.get(template, ""),
            "ok_count": count,
            "p99_service_ms": p99_service * 1e3,
        }
        if self.system is not None and entry["text"]:
            from repro.core.query import parse_query

            try:
                report = self.system.explain(parse_query(entry["text"]))
                entry["explain"] = report.to_dict()
            except Exception as exc:  # pragma: no cover - defensive
                entry["explain_error"] = str(exc)
        return entry


# ---------------------------------------------------------------------------
# Serialisation, rendering, validation
# ---------------------------------------------------------------------------


def _bundle_stem(bundle: dict) -> str:
    fired_us = int(round(float(bundle.get("fired_at_s", 0.0)) * 1e6))
    slo = str(bundle.get("slo", {}).get("name", "unknown"))
    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in slo)
    return f"incident-{safe}-{fired_us}us"


def write_bundle(bundle: dict, out_dir: Union[str, Path]) -> list[Path]:
    """Write one bundle as ``.json`` + ``.md``; returns written paths.

    File names are derived from the SLO name and the simulated fire
    time, so identical runs write identical artifacts.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = _bundle_stem(bundle)
    json_path = out_dir / f"{stem}.json"
    json_path.write_text(json.dumps(bundle, indent=1, sort_keys=False) + "\n")
    md_path = out_dir / f"{stem}.md"
    md_path.write_text(render_markdown(bundle))
    LOG.info(f"incident bundle written: {json_path}")
    return [json_path, md_path]


def render_markdown(bundle: dict) -> str:
    """Render a bundle as a human-readable incident report."""
    slo = bundle.get("slo", {})
    alert = bundle.get("alert", {})
    window = bundle.get("window", {})
    lines = [
        f"# Incident: `{slo.get('name')}` burn-rate alert",
        "",
        f"- **Objective**: {slo.get('objective')} "
        f"(target {slo.get('target')}, tenant `{slo.get('tenant')}`)",
        f"- **Fired at** (sim): {bundle.get('fired_at_s'):.6f}s "
        f"(pending since {alert.get('pending_at_s'):.6f}s)",
        f"- **Burn rates at fire**: fast={alert.get('burn_fast_at_fire'):.2f}x"
        f" slow={alert.get('burn_slow_at_fire'):.2f}x "
        f"(threshold {slo.get('burn_threshold')}x)",
        f"- **Budget position**: {alert.get('budget_bad_events')} bad of "
        f"{alert.get('budget_total_events')} in-scope events",
        f"- **Evidence window**: [{window.get('start_s'):.6f}s, "
        f"{window.get('end_s'):.6f}s]",
        "",
    ]
    journal = bundle.get("journal", {})
    if journal.get("available"):
        records = journal.get("records", [])
        outcomes = {o: 0 for o in OUTCOMES}
        for record in records:
            outcome = record.get("outcome")
            if outcome in outcomes:
                outcomes[outcome] += 1
        lines += [
            "## Journal window",
            "",
            f"{len(records)} records in window"
            + (f" ({journal.get('truncated')} older truncated)"
               if journal.get("truncated") else "")
            + (f", {journal.get('evicted')} evicted ring-buffer entries"
               if journal.get("evicted") else "")
            + ".",
            "",
            "| outcome | count |",
            "|---|---|",
        ]
        lines += [f"| {o} | {outcomes[o]} |" for o in OUTCOMES]
        lines.append("")
    faults = bundle.get("faults", {})
    if faults.get("events"):
        lines += ["## Injected faults", ""]
        lines += [
            f"- `{kind}` × {count}"
            for kind, count in faults.get("by_kind", {}).items()
        ]
        lines.append("")
    slow = bundle.get("slow_template")
    if slow:
        lines += [
            "## Hottest slow template",
            "",
            f"- fingerprint `{slow.get('template')}`, "
            f"{slow.get('ok_count')} OK in window, "
            f"p99 service {slow.get('p99_service_ms'):.3f}ms",
            f"- query: `{slow.get('text')}`",
        ]
        explain = slow.get("explain")
        if explain:
            bottleneck = explain.get("bottleneck")
            if bottleneck:
                lines.append(f"- planner bottleneck estimate: `{bottleneck}`")
        lines.append("")
    util = bundle.get("utilization") or []
    if util:
        lines += ["## Utilization (window)", ""]
        for series in util:
            labels = series.get("labels", {})
            points = series.get("points", [])
            if not points:
                continue
            last = points[-1][1]
            lines.append(
                f"- `{labels.get('resource', '?')}`: "
                f"{last:.3f} busy fraction at window end "
                f"({len(points)} samples)"
            )
        lines.append("")
    return "\n".join(lines) + "\n"


def looks_like_incident_bundle(payload: object) -> bool:
    """Is this payload shaped like an incident bundle?"""
    return (
        isinstance(payload, dict) and payload.get("kind") == INCIDENT_KIND
    )


def validate_incident_bundle(payload: object) -> list[str]:
    """Schema + internal-consistency check; returns problem strings.

    An empty list means the bundle is trustworthy: the alert's
    timestamps are ordered, its burn rates clear the SLO's threshold,
    every journal record sits inside the evidence window, and the
    embedded EXPLAIN (when present) passes the explain validator.
    """
    if not looks_like_incident_bundle(payload):
        return ["not an incident bundle (kind mismatch)"]
    assert isinstance(payload, dict)
    problems: list[str] = []
    if payload.get("version") != INCIDENT_VERSION:
        problems.append(
            f"unsupported bundle version {payload.get('version')!r}"
        )
    slo = payload.get("slo")
    alert = payload.get("alert")
    window = payload.get("window")
    if not isinstance(slo, dict):
        return problems + ["slo definition missing"]
    if not isinstance(alert, dict):
        return problems + ["alert record missing"]
    if not isinstance(window, dict):
        return problems + ["evidence window missing"]
    fired = alert.get("fired_at_s")
    pending = alert.get("pending_at_s")
    if not isinstance(fired, (int, float)):
        problems.append("alert never fired (fired_at_s missing)")
    elif isinstance(pending, (int, float)) and pending > fired:
        problems.append("alert pended after it fired")
    threshold = slo.get("burn_threshold")
    if isinstance(threshold, (int, float)) and isinstance(
        fired, (int, float)
    ):
        for key in ("burn_fast_at_fire", "burn_slow_at_fire"):
            burn = alert.get(key)
            if not isinstance(burn, (int, float)) or burn + 1e-9 < threshold:
                problems.append(
                    f"{key} {burn!r} below burn threshold {threshold}"
                )
    start = window.get("start_s")
    end = window.get("end_s")
    if not isinstance(start, (int, float)) or not isinstance(
        end, (int, float)
    ):
        problems.append("window bounds must be numbers")
    elif start > end:
        problems.append("window starts after it ends")
    journal = payload.get("journal")
    if isinstance(journal, dict) and journal.get("available"):
        records = journal.get("records")
        if not isinstance(records, list):
            problems.append("journal tail missing its records list")
        elif isinstance(start, (int, float)) and isinstance(
            end, (int, float)
        ):
            for i, record in enumerate(records):
                at = record.get("completed_at_s")
                if not isinstance(at, (int, float)) or not (
                    start - 1e-9 <= at <= end + 1e-9
                ):
                    problems.append(
                        f"journal record {i} completed at {at!r}, outside "
                        "the evidence window"
                    )
                    break
    slow = payload.get("slow_template")
    if isinstance(slow, dict):
        explain = slow.get("explain")
        if explain is not None:
            if not looks_like_explain(explain):
                problems.append("slow_template.explain is not an explain report")
            else:
                try:
                    validate_explain_report(explain)
                except Exception as exc:
                    problems.append(f"slow_template.explain invalid: {exc}")
    return problems
