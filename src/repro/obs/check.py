"""Artifact validator: ``python -m repro.obs.check <files...>``.

The CI observability job runs a smoke benchmark that writes a Prometheus
snapshot and a Chrome trace, then runs this module over the artifacts.
It exits non-zero when

- a trace file is missing, malformed, contains no duration events, or
  carries overlapping utilization counter samples on one track,
- a ``.prom`` snapshot is missing any of the canonical metric families
  (storage, pipeline, index, WAL, faults, scan executor/cache,
  explain/profile/utilization),
- a ``.json`` metrics snapshot is not a valid snapshot object,
- a ``.json`` explain report fails :func:`repro.obs.explain
  .validate_explain_report` (malformed plan tree, bottleneck
  attribution not summing to the scan time),
- a ``.json`` query journal fails :func:`repro.obs.journal
  .validate_journal_payload` (broken conservation, unresolvable
  template fingerprints, inconsistent latency decomposition),
- a ``.json`` A/B workload report fails :func:`repro.obs.report
  .validate_ab_report` (missing slices, contradictory flags),
- a ``.json`` incident bundle fails :func:`repro.obs.recorder
  .validate_incident_bundle` (alert timestamps out of order, burn
  rates below threshold, journal evidence outside the window),
- a ``.json`` SLO config fails :func:`repro.obs.slo
  .validate_slo_config` (bad objectives, duplicate names),
- a ``.json`` stream config fails :func:`repro.stream.status
  .validate_stream_config` (unparseable standing queries, duplicate
  names),
- a ``.json`` stream status snapshot fails :func:`repro.stream.status
  .validate_stream_status` (unknown alert states, missing window
  series, non-monotone series timestamps).

Keeping the validator in the library (rather than a shell one-liner in
the workflow) makes the failure mode testable.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.explain import (
    ExplainError,
    looks_like_explain,
    validate_explain_report,
)
from repro.obs.journal import looks_like_journal, validate_journal_payload
from repro.obs.log import get_logger
from repro.obs.recorder import (
    looks_like_incident_bundle,
    validate_incident_bundle,
)
from repro.obs.report import looks_like_ab_report, validate_ab_report
from repro.obs.slo import looks_like_slo_config, validate_slo_config
from repro.obs.tracing import TraceError, validate_chrome_trace
from repro.stream.status import (
    looks_like_stream_config,
    looks_like_stream_status,
    validate_stream_config,
    validate_stream_status,
)

#: Family prefixes a complete Prometheus snapshot must mention.
REQUIRED_FAMILY_PREFIXES = (
    "mithrilog_storage_",
    "mithrilog_pipeline_",
    "mithrilog_index_",
    "mithrilog_wal_",
    "mithrilog_faults_",
    "mithrilog_scan_",
    "mithrilog_explain_",
    "mithrilog_util_",
    "mithrilog_profile_",
    "mithrilog_service_",
    "mithrilog_workload_",
    "mithrilog_slo_",
    "mithrilog_ingest_",
    "mithrilog_stream_",
)

LOG = get_logger("repro.obs.check")


def check_prometheus_text(text: str) -> list[str]:
    """Validate snapshot text; returns the list of missing family prefixes."""
    return [p for p in REQUIRED_FAMILY_PREFIXES if p not in text]


def check_file(path: Path) -> Optional[str]:
    """Validate one artifact; returns an error message or ``None`` if ok."""
    if not path.exists():
        return f"{path}: missing"
    if path.suffix == ".prom":
        missing = check_prometheus_text(path.read_text())
        if missing:
            return f"{path}: missing metric families {missing}"
        return None
    if path.suffix == ".json":
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            return f"{path}: invalid JSON ({exc})"
        if "traceEvents" in payload:
            try:
                events = validate_chrome_trace(payload)
            except TraceError as exc:
                return f"{path}: {exc}"
            LOG.debug("trace ok", path=str(path), duration_events=events)
            return None
        if looks_like_explain(payload):
            try:
                nodes = validate_explain_report(payload)
            except ExplainError as exc:
                return f"{path}: {exc}"
            LOG.debug("explain ok", path=str(path), plan_nodes=nodes)
            return None
        if looks_like_journal(payload):
            problems = validate_journal_payload(payload)
            if problems:
                return f"{path}: {'; '.join(problems)}"
            LOG.debug(
                "journal ok",
                path=str(path),
                records=len(payload.get("records", [])),
            )
            return None
        if looks_like_ab_report(payload):
            problems = validate_ab_report(payload)
            if problems:
                return f"{path}: {'; '.join(problems)}"
            LOG.debug(
                "ab report ok",
                path=str(path),
                slices=len(payload.get("slices", [])),
            )
            return None
        if looks_like_incident_bundle(payload):
            problems = validate_incident_bundle(payload)
            if problems:
                return f"{path}: {'; '.join(problems)}"
            LOG.debug(
                "incident bundle ok",
                path=str(path),
                slo=payload.get("slo", {}).get("name"),
            )
            return None
        if looks_like_slo_config(payload):
            problems = validate_slo_config(payload)
            if problems:
                return f"{path}: {'; '.join(problems)}"
            LOG.debug(
                "slo config ok",
                path=str(path),
                slos=len(payload.get("slos", [])),
            )
            return None
        if looks_like_stream_config(payload):
            problems = validate_stream_config(payload)
            if problems:
                return f"{path}: {'; '.join(problems)}"
            LOG.debug(
                "stream config ok",
                path=str(path),
                queries=len(payload.get("queries", [])),
            )
            return None
        if looks_like_stream_status(payload):
            problems = validate_stream_status(payload)
            if problems:
                return f"{path}: {'; '.join(problems)}"
            LOG.debug(
                "stream status ok",
                path=str(path),
                queries=len(payload.get("queries", [])),
            )
            return None
        if "metrics" not in payload:
            return (
                f"{path}: not a Chrome trace, metrics snapshot, explain "
                "report, query journal, A/B report, incident bundle, "
                "SLO config, stream config, or stream status"
            )
        return None
    return f"{path}: unknown artifact type (expected .prom or .json)"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Validate each artifact; exit 0 when all pass, 1 on failures, 2 on misuse."""
    paths = [Path(p) for p in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        LOG.error("usage: python -m repro.obs.check <artifact files...>")
        return 2
    failures = 0
    for path in paths:
        problem = check_file(path)
        if problem is None:
            LOG.info(f"ok: {path}")
        else:
            LOG.error(problem)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
