"""Deterministic host-side profiling and trace-context propagation.

Two gaps motivated this module (PR 3 surfaced both):

- **Worker invisibility.** ``ScanExecutor`` fans the scan hot path out
  over subprocess partitions, and everything a worker does — LZAH
  decodes, tokenization, filter evaluation — happened in a registry and
  tracer the parent process never sees. Partition kernels now build a
  :class:`PartitionProfile` (picklable, plain data) and return it with
  their results; the parent merges the records into *its* registry
  (:func:`merge_into_registry`) and lays partition spans onto the trace.
- **No per-stage host accounting.** Simulated stage times come from the
  pipeline arithmetic, but nothing recorded where *host wall-clock*
  actually went (the number ``benchmarks/bench_hotpath.py`` optimises).
  :class:`ProfileBuilder` accumulates per-stage call counts, work units
  and wall seconds with one ``perf_counter`` pair per accounted call.

Determinism contract: the *counts* (``calls``, ``units``) are pure
functions of the store and query — identical at any worker count and on
any machine — while ``wall_s`` is measurement and varies. Canonical
renderings (:func:`profile_counts`) therefore strip ``wall_s``; the
EXPLAIN golden tests compare only the counts.

A :class:`TraceContext` names one logical operation across process and
shard boundaries: the system mints one per query (``q<N>``), the cluster
tags it with the shard index, and the scan executor's partitions extend
it with a partition index. Span args carry the context's tags, so a
Perfetto view of a sharded, parallel scan still groups by query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Mapping, Optional, TypeVar

from repro.obs.metrics import get_registry

__all__ = [
    "SCAN_STAGES",
    "PartitionProfile",
    "ProfileBuilder",
    "StageProfile",
    "TraceContext",
    "merge_into_registry",
    "merge_profiles",
    "profile_counts",
    "profile_to_dict",
]

#: The host-side scan stages the kernels account for, in pipeline order.
SCAN_STAGES = ("decompress", "tokenize", "filter")

T = TypeVar("T")


@dataclass(frozen=True)
class TraceContext:
    """Identity of one logical operation, propagated across boundaries.

    ``trace_id`` names the operation (``q7`` for the system's seventh
    query); ``shard`` and ``partition`` are filled in as the operation
    crosses the cluster scatter and the scan executor's fan-out. The
    context is frozen — derivation returns a new child — and its tags
    ride along as span args, never as span names, so span names stay
    stable for golden tests.
    """

    trace_id: str
    shard: Optional[int] = None
    partition: Optional[int] = None

    def child(
        self,
        shard: Optional[int] = None,
        partition: Optional[int] = None,
    ) -> "TraceContext":
        """A derived context with shard/partition filled in."""
        return replace(
            self,
            shard=shard if shard is not None else self.shard,
            partition=partition if partition is not None else self.partition,
        )

    def tags(self) -> dict[str, object]:
        """Span-args rendering; omits unset coordinates."""
        tags: dict[str, object] = {"trace_id": self.trace_id}
        if self.shard is not None:
            tags["shard"] = self.shard
        if self.partition is not None:
            tags["partition"] = self.partition
        return tags


@dataclass(frozen=True)
class StageProfile:
    """One stage's accumulated accounting.

    ``calls`` and ``units`` (bytes decoded, lines tokenized/evaluated)
    are deterministic; ``wall_s`` is host measurement.
    """

    calls: int = 0
    units: int = 0
    wall_s: float = 0.0

    def merged(self, other: "StageProfile") -> "StageProfile":
        return StageProfile(
            calls=self.calls + other.calls,
            units=self.units + other.units,
            wall_s=self.wall_s + other.wall_s,
        )


@dataclass(frozen=True)
class PartitionProfile:
    """What one scan partition did — the record a worker returns.

    Plain frozen data so it pickles across the process-pool boundary;
    ``index`` is the partition's position in page order (assigned by the
    parent, which knows the partition layout).
    """

    index: int
    pages: int
    bytes_decompressed: int
    lines_seen: int
    lines_kept: int
    stages: tuple[tuple[str, StageProfile], ...] = ()

    def stage_dict(self) -> dict[str, StageProfile]:
        return dict(self.stages)


class ProfileBuilder:
    """Mutable per-stage accumulator for one scan (or one partition)."""

    def __init__(self) -> None:
        self._stages: dict[str, list[float]] = {}

    def add(
        self, stage: str, calls: int = 1, units: int = 0, wall_s: float = 0.0
    ) -> None:
        entry = self._stages.get(stage)
        if entry is None:
            self._stages[stage] = [calls, units, wall_s]
        else:
            entry[0] += calls
            entry[1] += units
            entry[2] += wall_s

    def wrap(
        self,
        stage: str,
        fn: Callable[..., T],
        units_of: Optional[Callable[[T], int]] = None,
    ) -> Callable[..., T]:
        """Instrument ``fn``: each call accounts one ``calls`` tick, its
        wall time, and ``units_of(result)`` units when given.

        Exceptions propagate untouched (fault-injection behaviour must
        not change), and the failed call's wall time is still charged.
        """

        def instrumented(*args, **kwargs):
            start = time.perf_counter()
            try:
                result = fn(*args, **kwargs)
            except BaseException:
                self.add(stage, wall_s=time.perf_counter() - start)
                raise
            self.add(
                stage,
                units=units_of(result) if units_of is not None else 0,
                wall_s=time.perf_counter() - start,
            )
            return result

        return instrumented

    def build(self) -> dict[str, StageProfile]:
        return {
            stage: StageProfile(calls=int(c), units=int(u), wall_s=w)
            for stage, (c, u, w) in self._stages.items()
        }

    def build_items(self) -> tuple[tuple[str, StageProfile], ...]:
        """The profile as sorted items — the picklable, hashable form
        :class:`PartitionProfile` carries."""
        return tuple(sorted(self.build().items()))


# ---------------------------------------------------------------------------
# Merging and rendering
# ---------------------------------------------------------------------------


def merge_profiles(
    profiles: Iterable[Mapping[str, StageProfile]],
) -> dict[str, StageProfile]:
    """Sum stage profiles across partitions / shards / queries."""
    merged: dict[str, StageProfile] = {}
    for profile in profiles:
        for stage, entry in profile.items():
            existing = merged.get(stage)
            merged[stage] = entry if existing is None else existing.merged(entry)
    return merged


def profile_to_dict(
    profile: Mapping[str, StageProfile], wall: bool = True
) -> dict[str, dict[str, float]]:
    """JSON-friendly rendering; ``wall=False`` keeps only the
    deterministic counts (the canonical/golden form)."""
    out: dict[str, dict[str, float]] = {}
    for stage in sorted(profile):
        entry = profile[stage]
        rendered: dict[str, float] = {
            "calls": entry.calls, "units": entry.units
        }
        if wall:
            rendered["wall_s"] = entry.wall_s
        out[stage] = rendered
    return out


def profile_counts(
    profile: Mapping[str, StageProfile],
) -> dict[str, dict[str, float]]:
    """The deterministic subset of a profile (no wall seconds)."""
    return profile_to_dict(profile, wall=False)


def merge_into_registry(profile: Mapping[str, StageProfile]) -> None:
    """Fold a profile into the active registry's ``mithrilog_profile_*``
    family.

    Called by whoever *gathered* the profile — the scan executor after
    collecting partition results, the system after a serial scan — so
    work done in pool workers (whose registries die with the process)
    still lands in the parent's exposition.
    """
    registry = get_registry()
    if registry is None or not profile:
        return
    calls = registry.counter(
        "mithrilog_profile_calls_total",
        "Host-side kernel calls by scan stage",
        labelnames=("stage",),
    )
    units = registry.counter(
        "mithrilog_profile_units_total",
        "Work units (bytes decoded, lines processed) by scan stage",
        labelnames=("stage",),
    )
    wall = registry.counter(
        "mithrilog_profile_wall_seconds_total",
        "Host wall-clock seconds by scan stage",
        labelnames=("stage",),
    )
    for stage, entry in profile.items():
        if entry.calls:
            calls.inc(entry.calls, stage=stage)
        if entry.units:
            units.inc(entry.units, stage=stage)
        if entry.wall_s > 0:
            wall.inc(entry.wall_s, stage=stage)
