"""Hardware-utilization timelines derived from span data.

The tracer records *what ran when* on the simulated clock; this module
answers *how busy each simulated resource was* — the flash array's
internal bandwidth, the decompressor, the filter pipelines, the host
link — the per-resource view the paper's Figure 14 argument is about
(the bottleneck stage runs at 100% occupancy, everything else stalls
behind it).

Three consumers:

- :func:`occupancy_series` / :func:`busy_fraction` — step series and
  scalar busy fractions per resource track, computed from the spans'
  merged busy intervals.
- :func:`chrome_counter_events` — the same series as Chrome trace
  **counter tracks** (``"ph": "C"`` events named ``util:<resource>``),
  appended to the span export so Perfetto draws an occupancy lane under
  the spans. Samples on one track are strictly increasing in timestamp
  by construction; :func:`repro.obs.tracing.validate_chrome_trace`
  rejects traces that violate this (overlapping samples render as
  garbage sawtooth in Perfetto and usually mean two tracers were merged
  by accident).
- :func:`utilization_summary` — per-resource busy fractions over the
  whole trace window, what ``MithriLogSystem`` publishes per query as
  the ``mithrilog_util_busy_fraction`` gauge family.

Everything here is a pure function of the spans, hence exactly as
deterministic as the simulated timeline itself.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "RESOURCE_TRACKS",
    "busy_fraction",
    "busy_intervals",
    "chrome_counter_events",
    "occupancy_series",
    "trace_window",
    "utilization_summary",
]

#: Span tracks that model occupancy of one simulated resource. Tracks
#: like ``query`` or ``ingest`` are roll-ups, not resources, and are
#: excluded from utilization math.
RESOURCE_TRACKS = (
    "flash",
    "decompress",
    "filter",
    "host",
    "index",
    "compress",
)

#: Prefix for utilization counter-track names in Chrome trace exports.
COUNTER_TRACK_PREFIX = "util:"


def _track_spans(spans: Iterable[Any], track: str) -> list[Any]:
    return [s for s in spans if getattr(s, "track", None) == track]


def busy_intervals(
    spans: Iterable[Any], track: str
) -> list[tuple[float, float]]:
    """Merged ``(start_s, end_s)`` busy intervals for one resource track.

    Overlapping or adjacent spans (a batched query's per-query roots, a
    shard's back-to-back reads) merge into one interval; zero-duration
    spans contribute nothing.
    """
    intervals = sorted(
        (s.start_s, s.start_s + s.duration_s)
        for s in _track_spans(spans, track)
        if s.duration_s > 0
    )
    merged: list[tuple[float, float]] = []
    for start, end in intervals:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def busy_fraction(
    spans: Sequence[Any],
    track: str,
    window: Optional[tuple[float, float]] = None,
) -> float:
    """Fraction of ``window`` the resource was busy.

    Without an explicit window, the full trace extent (min span start to
    max span end over *all* spans) is used, so fractions of different
    resources are comparable.
    """
    if window is None:
        window = trace_window(spans)
    if window is None:
        return 0.0
    t0, t1 = window
    if t1 <= t0:
        return 0.0
    busy = 0.0
    for start, end in busy_intervals(spans, track):
        busy += max(0.0, min(end, t1) - max(start, t0))
    return busy / (t1 - t0)


def trace_window(spans: Sequence[Any]) -> Optional[tuple[float, float]]:
    """The ``(earliest start, latest end)`` extent of a span list."""
    if not spans:
        return None
    t0 = min(s.start_s for s in spans)
    t1 = max(s.start_s + s.duration_s for s in spans)
    return (t0, t1)


def occupancy_series(
    spans: Iterable[Any], track: str
) -> list[tuple[float, int]]:
    """Step series of concurrent-span occupancy on one track.

    Returns ``(ts_s, value)`` samples with strictly increasing
    timestamps; the value holds from each sample until the next. For
    pipeline stage tracks the value is effectively 0/1 (busy), but
    overlapping same-track spans (batched per-query roots) count up.
    """
    deltas: dict[float, int] = {}
    for span in _track_spans(spans, track):
        if span.duration_s <= 0:
            continue
        end = span.start_s + span.duration_s
        deltas[span.start_s] = deltas.get(span.start_s, 0) + 1
        deltas[end] = deltas.get(end, 0) - 1
    series: list[tuple[float, int]] = []
    level = 0
    for ts in sorted(deltas):
        level += deltas[ts]
        if not series or series[-1][1] != level:
            series.append((ts, level))
    return series


def chrome_counter_events(
    spans: Sequence[Any],
    tracks: Optional[Sequence[str]] = None,
    pid: int = 0,
) -> list[dict[str, Any]]:
    """The utilization series as Chrome trace counter events.

    One counter track per resource, named ``util:<track>``. Chrome
    identifies counter tracks by ``(pid, name)``; each track's samples
    come out with strictly increasing ``ts`` (no overlapping samples),
    which the trace validator enforces on re-ingestion.
    """
    events: list[dict[str, Any]] = []
    if tracks is None:
        present = {getattr(s, "track", None) for s in spans}
        tracks = [t for t in RESOURCE_TRACKS if t in present]
    for track in tracks:
        for ts, value in occupancy_series(spans, track):
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "name": f"{COUNTER_TRACK_PREFIX}{track}",
                    "ts": ts * 1e6,
                    "args": {"busy": value},
                }
            )
    return events


def utilization_summary(
    spans: Sequence[Any], tracks: Optional[Sequence[str]] = None
) -> dict[str, float]:
    """Per-resource busy fraction over the whole trace window."""
    if tracks is None:
        present = {getattr(s, "track", None) for s in spans}
        tracks = [t for t in RESOURCE_TRACKS if t in present]
    window = trace_window(spans)
    return {
        track: busy_fraction(spans, track, window=window) for track in tracks
    }
