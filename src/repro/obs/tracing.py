"""Span tracing on the simulation clock, exported as Chrome trace JSON.

Every performance number in this reproduction is *simulated* time
(:class:`repro.sim.clock.SimClock`), so spans carry two timelines:

- ``start_s`` / ``duration_s`` — **simulated seconds**, the paper's
  hardware arithmetic. These become the Chrome trace ``ts``/``dur``
  fields, so opening the export in Perfetto (or ``chrome://tracing``)
  shows a query's index-lookup → flash-read → decompress → filter →
  host-transfer phases laid out exactly as the pipeline model computed
  them, overlapping where the stages overlap.
- ``wall_start_s`` / ``wall_duration_s`` — host wall time, recorded as
  span args, for the rare case where real elapsed time matters (CI
  smoke runs, profiling the simulator itself).

Two recording styles:

- :meth:`SpanTracer.record` — explicit simulated interval. The system
  layers use this: phase durations fall out of the pipeline arithmetic,
  not out of measuring the simulator.
- :meth:`SpanTracer.span` — a context manager that times the enclosed
  block. Against a :class:`SimClock` it brackets ``clock.now``;
  without one it falls back to wall time on the simulated timeline's
  origin (still valid trace JSON, just a different meaning).

Tracks (Chrome ``tid``) separate overlapping pipeline stages; each track
gets a ``thread_name`` metadata record so Perfetto labels the rows.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.sim.clock import SimClock

__all__ = [
    "Span",
    "SpanTracer",
    "TraceError",
    "validate_chrome_trace",
]


class TraceError(ValueError):
    """A malformed trace (bad span interval, invalid export)."""


@dataclass(frozen=True)
class Span:
    """One completed span on the simulated timeline."""

    name: str
    start_s: float  #: simulated start time (seconds)
    duration_s: float  #: simulated duration (seconds)
    category: str = ""
    track: str = "main"
    args: dict[str, Any] = field(default_factory=dict)
    wall_start_s: float = 0.0
    wall_duration_s: float = 0.0

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class SpanTracer:
    """Collects spans and exports them as Chrome trace-event JSON."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock
        self.spans: list[Span] = []

    def __len__(self) -> int:
        return len(self.spans)

    def record(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        category: str = "",
        track: Optional[str] = None,
        **args: Any,
    ) -> Span:
        """Record one explicit simulated interval."""
        if duration_s < 0:
            raise TraceError(f"span {name!r} has negative duration {duration_s}")
        if start_s < 0:
            raise TraceError(f"span {name!r} starts before t=0 ({start_s})")
        span = Span(
            name=name,
            start_s=start_s,
            duration_s=duration_s,
            category=category,
            track=track if track is not None else name,
            args=args,
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        track: Optional[str] = None,
        clock: Optional[SimClock] = None,
        **args: Any,
    ) -> Iterator[dict[str, Any]]:
        """Time the enclosed block as one span.

        With a clock (argument or the tracer's own) the span brackets
        simulated time; otherwise it falls back to wall time. The yielded
        dict lets the block attach result args::

            with tracer.span("recover", clock=clock) as info:
                info["batches"] = len(batches)
        """
        active = clock if clock is not None else self.clock
        wall_start = time.perf_counter()
        sim_start = active.now if active is not None else 0.0
        mutable_args: dict[str, Any] = dict(args)
        try:
            yield mutable_args
        finally:
            wall_dur = time.perf_counter() - wall_start
            sim_dur = (active.now - sim_start) if active is not None else wall_dur
            self.spans.append(
                Span(
                    name=name,
                    start_s=sim_start,
                    duration_s=sim_dur,
                    category=category,
                    track=track if track is not None else name,
                    args=mutable_args,
                    wall_start_s=wall_start,
                    wall_duration_s=wall_dur,
                )
            )

    def names(self) -> set[str]:
        """Distinct span names recorded so far."""
        return {s.name for s in self.spans}

    def clear(self) -> None:
        self.spans.clear()

    # -- export ----------------------------------------------------------

    def to_chrome_trace(self, utilization: bool = False) -> dict[str, Any]:
        """The spans as a Chrome trace-event JSON object.

        Simulated seconds map to trace microseconds (the unit Perfetto
        expects); wall-clock measurements ride along in each event's
        ``args``. With ``utilization=True`` the export also carries
        per-resource occupancy **counter tracks** (``util:flash``,
        ``util:decompress``, ...) derived from the spans by
        :mod:`repro.obs.timeline`, so Perfetto draws a busy/idle lane
        under each resource's span row.
        """
        tracks = sorted({s.track for s in self.spans})
        tids = {track: i + 1 for i, track in enumerate(tracks)}
        events: list[dict[str, Any]] = [
            {
                "ph": "M",
                "pid": 0,
                "tid": tids[track],
                "name": "thread_name",
                "args": {"name": track},
            }
            for track in tracks
        ]
        for s in self.spans:
            args = dict(s.args)
            if s.wall_duration_s:
                args["wall_duration_s"] = s.wall_duration_s
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": tids[s.track],
                    "name": s.name,
                    "cat": s.category or "sim",
                    "ts": s.start_s * 1e6,
                    "dur": s.duration_s * 1e6,
                    "args": args,
                }
            )
        if utilization:
            from repro.obs.timeline import chrome_counter_events

            events.extend(chrome_counter_events(self.spans))
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def write_chrome_trace(
        self, path: Union[str, Path], utilization: bool = False
    ) -> Path:
        """Serialise the Chrome trace to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_chrome_trace(utilization=utilization), indent=1)
        )
        return path


def validate_chrome_trace(trace: Union[dict, str, Path]) -> int:
    """Check a Chrome trace object (or file) is well-formed and non-empty.

    Returns the number of duration (``"X"``) events. Raises
    :class:`TraceError` on an empty or structurally invalid trace — the
    CI smoke job fails on exactly this.
    """
    if isinstance(trace, (str, Path)):
        try:
            trace = json.loads(Path(trace).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TraceError(f"unreadable trace file: {exc}") from exc
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise TraceError("trace must be an object with a traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise TraceError("traceEvents must be a list")
    duration_events = 0
    counter_ts: dict[tuple, float] = {}
    for event in events:
        if not isinstance(event, dict) or "ph" not in event or "name" not in event:
            raise TraceError(f"malformed trace event: {event!r}")
        if event["ph"] == "X":
            if "ts" not in event or "dur" not in event:
                raise TraceError(f"duration event missing ts/dur: {event!r}")
            if event["dur"] < 0:
                raise TraceError(f"negative duration in event: {event!r}")
            duration_events += 1
        elif event["ph"] == "C":
            # counter tracks (utilization lanes): samples on one track
            # must advance strictly — two samples at one instant render
            # nondeterministically and always mean a bad merge upstream
            if "ts" not in event:
                raise TraceError(f"counter event missing ts: {event!r}")
            track = (event.get("pid"), event["name"])
            previous = counter_ts.get(track)
            if previous is not None and event["ts"] <= previous:
                raise TraceError(
                    f"overlapping counter samples on track {event['name']!r} "
                    f"at ts={event['ts']}"
                )
            counter_ts[track] = event["ts"]
    if duration_events == 0:
        raise TraceError("trace contains no duration events")
    return duration_events
