"""Observability: metrics, tracing, profiling, EXPLAIN, exposition.

The telemetry layer the ROADMAP's "production-scale system" needs before
any further performance work can be measured honestly — plus the
interpretation layer on top of it:

- :mod:`repro.obs.metrics` — labeled, thread-safe counters / gauges /
  histograms behind a default-on but nullable process-wide registry.
  Components bind metric handles at construction; with metrics disabled
  the hot path is a single ``is None`` test.
- :mod:`repro.obs.tracing` — spans timestamped on the simulation clock
  (and wall time), exported as Chrome trace-event JSON so a query's
  index-lookup → flash-read → decompress → filter → host-transfer
  pipeline opens directly in Perfetto.
- :mod:`repro.obs.profile` — deterministic host-side stage profiling
  (calls / units / wall seconds) that survives the process-pool
  boundary, and the :class:`~repro.obs.profile.TraceContext` threaded
  through shards and scan partitions.
- :mod:`repro.obs.timeline` — per-resource utilization series derived
  from span data, exported as Chrome counter tracks.
- :mod:`repro.obs.explain` — query plan trees with estimated vs actual
  values, bottleneck attribution and per-stage utilization (EXPLAIN /
  EXPLAIN ANALYZE).
- :mod:`repro.obs.watch` — the perf-regression watchdog over benchmark
  trajectory files (``python -m repro watch-perf``).
- :mod:`repro.obs.journal` — the append-only, replayable query journal
  every service request (and direct system query) lands in: tenant,
  template fingerprint, outcome, latency decomposition, bottleneck
  stage. Feeds :mod:`repro.analytics.workload`.
- :mod:`repro.obs.report` — A/B workload reports diffing two mined
  journal profiles slice-by-slice, flagging regressions an aggregate
  win would hide; markdown + JSON renderers.
- :mod:`repro.obs.expose` — Prometheus text format and JSON snapshot
  dumps, plus the canonical metric-family bootstrap.
- :mod:`repro.obs.series` — sim-clock time-series ring buffers over
  the registry: windowed rates from cumulative counters, windowed
  percentiles from histogram snapshots.
- :mod:`repro.obs.slo` — declarative per-tenant SLOs evaluated by a
  deterministic multi-window burn-rate alert state machine
  (ok → pending → firing → resolved) on the simulated clock.
- :mod:`repro.obs.recorder` — the incident flight recorder: validated
  evidence bundles (series, journal tail, faults, slow-template
  EXPLAIN) captured the moment an alert fires.
- :mod:`repro.obs.log` — the structured leveled logger the CLI uses
  instead of bare ``print``.

See ``docs/OBSERVABILITY.md`` and ``docs/EXPLAIN.md`` for the full tour.
"""

from repro.obs.explain import (
    ExplainError,
    ExplainReport,
    PlanNode,
    build_explain,
    validate_explain_report,
)
from repro.obs.expose import (
    bootstrap_families,
    render_prometheus,
    snapshot,
    write_snapshot,
)
from repro.obs.journal import (
    JournalError,
    JournalRecord,
    QueryJournal,
    load_journal,
    replay_requests,
    template_fingerprint,
    validate_journal_payload,
)
from repro.obs.log import Logger, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    PartitionProfile,
    ProfileBuilder,
    StageProfile,
    TraceContext,
    merge_profiles,
    profile_to_dict,
)
from repro.obs.recorder import (
    FlightRecorder,
    looks_like_incident_bundle,
    render_markdown,
    validate_incident_bundle,
    write_bundle,
)
from repro.obs.report import (
    ABReport,
    ReportError,
    SliceDelta,
    build_ab_report,
    validate_ab_report,
)
from repro.obs.series import (
    HistogramSnapshotSeries,
    MetricSampler,
    RingSeries,
    SeriesError,
    SeriesPoint,
)
from repro.obs.slo import (
    SLO,
    Alert,
    AlertState,
    SLOError,
    SLOMonitor,
    default_slos,
    load_slo_config,
    parse_slo_config,
    replay_journal,
    validate_slo_config,
)
from repro.obs.timeline import (
    busy_fraction,
    chrome_counter_events,
    occupancy_series,
    utilization_summary,
)
from repro.obs.tracing import Span, SpanTracer, TraceError, validate_chrome_trace

__all__ = [
    "ABReport",
    "Alert",
    "AlertState",
    "Counter",
    "ExplainError",
    "ExplainReport",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistogramSnapshotSeries",
    "JournalError",
    "JournalRecord",
    "Logger",
    "MetricError",
    "MetricSampler",
    "MetricsRegistry",
    "PartitionProfile",
    "PlanNode",
    "ProfileBuilder",
    "QueryJournal",
    "ReportError",
    "RingSeries",
    "SLO",
    "SLOError",
    "SLOMonitor",
    "SeriesError",
    "SeriesPoint",
    "SliceDelta",
    "Span",
    "SpanTracer",
    "StageProfile",
    "TraceContext",
    "TraceError",
    "bootstrap_families",
    "build_ab_report",
    "build_explain",
    "busy_fraction",
    "chrome_counter_events",
    "default_slos",
    "disable",
    "enable",
    "get_logger",
    "get_registry",
    "load_journal",
    "load_slo_config",
    "looks_like_incident_bundle",
    "merge_profiles",
    "occupancy_series",
    "parse_slo_config",
    "profile_to_dict",
    "render_markdown",
    "render_prometheus",
    "replay_journal",
    "replay_requests",
    "set_registry",
    "snapshot",
    "template_fingerprint",
    "use_registry",
    "utilization_summary",
    "validate_ab_report",
    "validate_chrome_trace",
    "validate_explain_report",
    "validate_incident_bundle",
    "validate_journal_payload",
    "validate_slo_config",
    "write_bundle",
    "write_snapshot",
]
