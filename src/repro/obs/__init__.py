"""Observability: metrics, tracing, profiling, EXPLAIN, exposition.

The telemetry layer the ROADMAP's "production-scale system" needs before
any further performance work can be measured honestly — plus the
interpretation layer on top of it:

- :mod:`repro.obs.metrics` — labeled, thread-safe counters / gauges /
  histograms behind a default-on but nullable process-wide registry.
  Components bind metric handles at construction; with metrics disabled
  the hot path is a single ``is None`` test.
- :mod:`repro.obs.tracing` — spans timestamped on the simulation clock
  (and wall time), exported as Chrome trace-event JSON so a query's
  index-lookup → flash-read → decompress → filter → host-transfer
  pipeline opens directly in Perfetto.
- :mod:`repro.obs.profile` — deterministic host-side stage profiling
  (calls / units / wall seconds) that survives the process-pool
  boundary, and the :class:`~repro.obs.profile.TraceContext` threaded
  through shards and scan partitions.
- :mod:`repro.obs.timeline` — per-resource utilization series derived
  from span data, exported as Chrome counter tracks.
- :mod:`repro.obs.explain` — query plan trees with estimated vs actual
  values, bottleneck attribution and per-stage utilization (EXPLAIN /
  EXPLAIN ANALYZE).
- :mod:`repro.obs.watch` — the perf-regression watchdog over benchmark
  trajectory files (``python -m repro watch-perf``).
- :mod:`repro.obs.journal` — the append-only, replayable query journal
  every service request (and direct system query) lands in: tenant,
  template fingerprint, outcome, latency decomposition, bottleneck
  stage. Feeds :mod:`repro.analytics.workload`.
- :mod:`repro.obs.report` — A/B workload reports diffing two mined
  journal profiles slice-by-slice, flagging regressions an aggregate
  win would hide; markdown + JSON renderers.
- :mod:`repro.obs.expose` — Prometheus text format and JSON snapshot
  dumps, plus the canonical metric-family bootstrap.
- :mod:`repro.obs.log` — the structured leveled logger the CLI uses
  instead of bare ``print``.

See ``docs/OBSERVABILITY.md`` and ``docs/EXPLAIN.md`` for the full tour.
"""

from repro.obs.explain import (
    ExplainError,
    ExplainReport,
    PlanNode,
    build_explain,
    validate_explain_report,
)
from repro.obs.expose import (
    bootstrap_families,
    render_prometheus,
    snapshot,
    write_snapshot,
)
from repro.obs.journal import (
    JournalError,
    JournalRecord,
    QueryJournal,
    load_journal,
    replay_requests,
    template_fingerprint,
    validate_journal_payload,
)
from repro.obs.log import Logger, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    PartitionProfile,
    ProfileBuilder,
    StageProfile,
    TraceContext,
    merge_profiles,
    profile_to_dict,
)
from repro.obs.report import (
    ABReport,
    ReportError,
    SliceDelta,
    build_ab_report,
    validate_ab_report,
)
from repro.obs.timeline import (
    busy_fraction,
    chrome_counter_events,
    occupancy_series,
    utilization_summary,
)
from repro.obs.tracing import Span, SpanTracer, TraceError, validate_chrome_trace

__all__ = [
    "ABReport",
    "Counter",
    "ExplainError",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "JournalError",
    "JournalRecord",
    "Logger",
    "MetricError",
    "MetricsRegistry",
    "PartitionProfile",
    "PlanNode",
    "ProfileBuilder",
    "QueryJournal",
    "ReportError",
    "SliceDelta",
    "Span",
    "SpanTracer",
    "StageProfile",
    "TraceContext",
    "TraceError",
    "bootstrap_families",
    "build_ab_report",
    "build_explain",
    "busy_fraction",
    "chrome_counter_events",
    "disable",
    "enable",
    "get_logger",
    "get_registry",
    "load_journal",
    "merge_profiles",
    "occupancy_series",
    "profile_to_dict",
    "render_prometheus",
    "replay_requests",
    "set_registry",
    "snapshot",
    "template_fingerprint",
    "use_registry",
    "utilization_summary",
    "validate_ab_report",
    "validate_chrome_trace",
    "validate_explain_report",
    "validate_journal_payload",
    "write_snapshot",
]
