"""Observability: metrics, sim-clock tracing, exposition, logging.

The telemetry layer the ROADMAP's "production-scale system" needs before
any further performance work can be measured honestly. Four modules:

- :mod:`repro.obs.metrics` — labeled, thread-safe counters / gauges /
  histograms behind a default-on but nullable process-wide registry.
  Components bind metric handles at construction; with metrics disabled
  the hot path is a single ``is None`` test.
- :mod:`repro.obs.tracing` — spans timestamped on the simulation clock
  (and wall time), exported as Chrome trace-event JSON so a query's
  index-lookup → flash-read → decompress → filter → host-transfer
  pipeline opens directly in Perfetto.
- :mod:`repro.obs.expose` — Prometheus text format and JSON snapshot
  dumps, plus the canonical metric-family bootstrap.
- :mod:`repro.obs.log` — the structured leveled logger the CLI uses
  instead of bare ``print``.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.expose import (
    bootstrap_families,
    render_prometheus,
    snapshot,
    write_snapshot,
)
from repro.obs.log import Logger, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import Span, SpanTracer, TraceError, validate_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Logger",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "TraceError",
    "bootstrap_families",
    "disable",
    "enable",
    "get_logger",
    "get_registry",
    "render_prometheus",
    "set_registry",
    "snapshot",
    "use_registry",
    "validate_chrome_trace",
    "write_snapshot",
]
