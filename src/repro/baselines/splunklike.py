"""Splunk-like indexed log search engine (Section 7.5's comparison).

Models what the paper describes of Splunk's behaviour:

- an inverted index over token -> event buckets narrows each query to
  candidate buckets, which are then scanned and matched,
- each search query runs on a **single thread**; following the paper's
  deliberately-generous methodology, reported times divide the raw
  single-thread time by the platform's 12 hyper-threads,
- queries whose intersection sets carry only negative terms cannot be
  narrowed and scan (nearly) the whole store — the slow cluster at the
  left edge of Figure 16.

As with the scan engine, matching is real; time is a calibrated model of
a schema-on-read engine (tens of MB/s per thread, consistent with the
paper's measured 561 s over ~22 GB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.query import Query
from repro.core.tokenizer import split_tokens
from repro.params import COMPARISON_THREADS


@dataclass(frozen=True)
class SplunkCostModel:
    """Single-thread costs of a schema-on-read search engine."""

    index_seek_s: float = 2e-3  # per-token posting-list fetch
    byte_cost_s: float = 25e-9  # per candidate byte (~40 MB/s/thread)
    line_cost_s: float = 500e-9  # per candidate event (field extraction)
    threads: int = COMPARISON_THREADS

    def query_seconds(
        self, tokens_looked_up: int, candidate_bytes: int, candidate_lines: int
    ) -> float:
        return (
            tokens_looked_up * self.index_seek_s
            + candidate_bytes * self.byte_cost_s
            + candidate_lines * self.line_cost_s
        )


@dataclass
class SplunkResult:
    """Outcome of one indexed search."""

    matching_indices: list[int]
    candidate_lines: int
    candidate_bytes: int
    raw_elapsed_s: float
    amortized_elapsed_s: float
    full_scan: bool

    def effective_throughput(self, original_bytes: int) -> float:
        if self.amortized_elapsed_s == 0:
            return 0.0
        return original_bytes / self.amortized_elapsed_s


class SplunkLikeEngine:
    """Bucketed inverted index plus single-threaded candidate scan."""

    def __init__(
        self,
        lines: Sequence[bytes],
        cost_model: Optional[SplunkCostModel] = None,
        bucket_lines: int = 32,
    ) -> None:
        if bucket_lines <= 0:
            raise ValueError("bucket_lines must be positive")
        self.lines = list(lines)
        self.cost_model = cost_model if cost_model is not None else SplunkCostModel()
        self.bucket_lines = bucket_lines
        self.total_bytes = sum(len(line) + 1 for line in self.lines)
        self._num_buckets = -(-len(self.lines) // bucket_lines) if self.lines else 0
        self._postings: dict[bytes, set[int]] = {}
        for i, line in enumerate(self.lines):
            bucket = i // bucket_lines
            for token in split_tokens(line):
                self._postings.setdefault(token, set()).add(bucket)

    def _candidate_buckets(self, query: Query) -> tuple[set[int], int, bool]:
        """Buckets the index cannot rule out, plus lookup count and
        whether any intersection set forced a full scan."""
        buckets: set[int] = set()
        lookups = 0
        full_scan = False
        everything = set(range(self._num_buckets))
        for iset in query.intersections:
            positives = iset.positives
            if not positives:
                full_scan = True
                buckets |= everything
                continue
            acc: Optional[set[int]] = None
            for term in positives:
                lookups += 1
                postings = self._postings.get(term.token, set())
                acc = set(postings) if acc is None else acc & postings
                if not acc:
                    break
            buckets |= acc or set()
        return buckets, lookups, full_scan

    def execute(self, query: Query) -> SplunkResult:
        """Run one search: index narrowing, then a real candidate scan."""
        buckets, lookups, full_scan = self._candidate_buckets(query)
        matching: list[int] = []
        candidate_lines = 0
        candidate_bytes = 0
        for bucket in sorted(buckets):
            start = bucket * self.bucket_lines
            for i in range(start, min(start + self.bucket_lines, len(self.lines))):
                line = self.lines[i]
                candidate_lines += 1
                candidate_bytes += len(line) + 1
                if query.matches_line(line):
                    matching.append(i)
        raw = self.cost_model.query_seconds(lookups, candidate_bytes, candidate_lines)
        return SplunkResult(
            matching_indices=matching,
            candidate_lines=candidate_lines,
            candidate_bytes=candidate_bytes,
            raw_elapsed_s=raw,
            amortized_elapsed_s=raw / self.cost_model.threads,
            full_scan=full_scan,
        )
