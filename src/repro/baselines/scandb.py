"""MonetDB-like full-scan engine (Section 7.4.2's software comparison).

The paper stores every log line in a single-VARCHAR-column MonetDB table
and forces whole-table scans, isolating raw text-matching performance.
Its observations, which this model reproduces:

- processing is CPU-bound (storage profiling showed <1 GB/s of I/O while
  all cores were pegged, against a 7 GB/s array),
- effective throughput drops as query term count grows (Table 6's
  MonetDB rows fall from ~0.6-2.8 GB/s at one query to ~0.05-0.6 at
  eight).

The engine really evaluates queries over real lines; the cost model maps
the work — bytes parsed, lines visited, terms compared — onto the
comparison platform's time scale. Elapsed time is simulated (never wall
clock), so results are deterministic on any host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.grep import grep_indices
from repro.core.query import Query
from repro.params import COMPARISON_STORAGE_BANDWIDTH


@dataclass(frozen=True)
class ScanDbCostModel:
    """Per-unit CPU costs of the scan, calibrated to Table 6's MonetDB rows.

    ``effective GB/s = line_bytes / (line_bytes*byte_cost + line_cost +
    terms*term_cost)`` — for ~150-byte lines this lands single ~5-term
    queries near 1-2.5 GB/s and 8-query unions (~40 terms) near
    0.05-0.5 GB/s, the paper's measured band.
    """

    byte_cost_s: float = 0.15e-9  # per byte parsed (~6.7 GB/s ceiling)
    line_cost_s: float = 40e-9  # per-line dispatch overhead
    term_cost_s: float = 14e-9  # per query term compared per line
    storage_bandwidth: int = COMPARISON_STORAGE_BANDWIDTH

    def scan_seconds(self, total_bytes: int, lines: int, query_terms: int) -> float:
        cpu = (
            total_bytes * self.byte_cost_s
            + lines * (self.line_cost_s + query_terms * self.term_cost_s)
        )
        storage = total_bytes / self.storage_bandwidth
        # pipelined read+compute: the slower side dominates; the paper
        # observed the CPU side always does on this workload
        return max(cpu, storage)


@dataclass
class ScanResult:
    """Outcome of one full-scan query."""

    matching_indices: list[int]
    lines_scanned: int
    bytes_scanned: int
    elapsed_s: float

    def effective_throughput(self, original_bytes: int) -> float:
        """The paper's metric: original dataset size / elapsed time."""
        if self.elapsed_s == 0:
            return 0.0
        return original_bytes / self.elapsed_s


class ScanDatabase:
    """Single-VARCHAR-column table scanned in full for every query."""

    def __init__(
        self,
        lines: Sequence[bytes],
        cost_model: Optional[ScanDbCostModel] = None,
    ) -> None:
        self.lines = list(lines)
        self.cost_model = cost_model if cost_model is not None else ScanDbCostModel()
        self.total_bytes = sum(len(line) + 1 for line in self.lines)

    def __len__(self) -> int:
        return len(self.lines)

    @staticmethod
    def _term_count(query: Query) -> int:
        return sum(len(iset.terms) for iset in query.intersections)

    def execute(self, query: Query) -> ScanResult:
        """Run one query as a full scan (real matching, modelled time)."""
        matching = grep_indices(query, self.lines)
        elapsed = self.cost_model.scan_seconds(
            total_bytes=self.total_bytes,
            lines=len(self.lines),
            query_terms=self._term_count(query),
        )
        return ScanResult(
            matching_indices=matching,
            lines_scanned=len(self.lines),
            bytes_scanned=self.total_bytes,
            elapsed_s=elapsed,
        )
