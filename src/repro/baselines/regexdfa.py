"""A HARE-like regular-expression engine (Section 7.4.3's comparator).

HAWK/HARE [13, 68] accelerate unstructured log queries with parallel
finite state machines compiled from regular expressions — the
general-purpose approach MithriLog's token filter is measured against.
To make that comparison concrete rather than purely arithmetic, this
module implements the same machinery in software, from scratch:

- a regex parser for the classic core: literals, ``.``, character
  classes (``[a-z0-9_]``, negated ``[^...]``), grouping, alternation
  ``|``, and the ``* + ?`` repetitions;
- Thompson construction to an NFA;
- subset construction to a DFA, the form HARE lays onto hardware (one
  state transition per input character per cycle);
- unanchored line search, plus conjunctive/negated combinations so that
  any offloadable token query has a regex equivalent.

The companion throughput/area model carries HARE's published numbers
(400 MB/s in ~55K logic elements on FPGA); the functional engine lets
tests prove both approaches compute the same answers where their query
classes overlap — and that regexes answer substring queries the token
filter cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import QueryParseError

_BYTE_RANGE = range(256)


# ---------------------------------------------------------------------------
# Parsing: pattern text -> AST
# ---------------------------------------------------------------------------

# AST nodes: ("char", frozenset[int]) | ("concat", [n]) | ("alt", [n])
#            | ("star", n) | ("plus", n) | ("opt", n) | ("empty",)


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    def error(self, message: str) -> QueryParseError:
        return QueryParseError(
            f"regex error at {self.pos} in {self.pattern!r}: {message}"
        )

    def peek(self) -> Optional[str]:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def take(self) -> str:
        ch = self.peek()
        if ch is None:
            raise self.error("unexpected end of pattern")
        self.pos += 1
        return ch

    def parse(self):
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise self.error(f"unexpected {self.peek()!r}")
        return node

    def _alternation(self):
        branches = [self._concat()]
        while self.peek() == "|":
            self.take()
            branches.append(self._concat())
        return branches[0] if len(branches) == 1 else ("alt", branches)

    def _concat(self):
        parts = []
        while self.peek() not in (None, "|", ")"):
            parts.append(self._repeat())
        if not parts:
            return ("empty",)
        return parts[0] if len(parts) == 1 else ("concat", parts)

    def _repeat(self):
        node = self._atom()
        while self.peek() in ("*", "+", "?"):
            op = self.take()
            kind = {"*": "star", "+": "plus", "?": "opt"}[op]
            node = (kind, node)
        return node

    def _atom(self):
        ch = self.take()
        if ch == "(":
            node = self._alternation()
            if self.peek() != ")":
                raise self.error("expected ')'")
            self.take()
            return node
        if ch == "[":
            return ("char", self._char_class())
        if ch == ".":
            return ("char", frozenset(b for b in _BYTE_RANGE if b != 0x0A))
        if ch == "\\":
            return ("char", self._escape(self.take()))
        if ch in ")|*+?":
            raise self.error(f"misplaced {ch!r}")
        return ("char", frozenset({ord(ch)}))

    def _escape(self, ch: str) -> frozenset[int]:
        classes = {
            "d": frozenset(range(ord("0"), ord("9") + 1)),
            "w": frozenset(
                set(range(ord("a"), ord("z") + 1))
                | set(range(ord("A"), ord("Z") + 1))
                | set(range(ord("0"), ord("9") + 1))
                | {ord("_")}
            ),
            "s": frozenset({0x20, 0x09}),
        }
        if ch in classes:
            return classes[ch]
        return frozenset({ord(ch)})

    def _char_class(self) -> frozenset[int]:
        negate = False
        if self.peek() == "^":
            self.take()
            negate = True
        members: set[int] = set()
        if self.peek() == "]":  # a literal ']' first
            members.add(ord(self.take()))
        while self.peek() != "]":
            ch = self.take()
            if ch == "\\":
                members |= self._escape(self.take())
                continue
            lo = ord(ch)
            if self.peek() == "-" and self.pattern[self.pos + 1 : self.pos + 2] != "]":
                self.take()
                hi = ord(self.take())
                if hi < lo:
                    raise self.error("inverted range")
                members |= set(range(lo, hi + 1))
            else:
                members.add(lo)
        self.take()  # closing ']'
        if negate:
            return frozenset(set(_BYTE_RANGE) - members)
        if not members:
            raise self.error("empty character class")
        return frozenset(members)


# ---------------------------------------------------------------------------
# Thompson NFA
# ---------------------------------------------------------------------------


@dataclass
class _NFA:
    start: int
    accept: int
    # transitions[state] = list of (byteset | None, target); None = epsilon
    transitions: list[list[tuple[Optional[frozenset[int]], int]]] = field(
        default_factory=list
    )

    def new_state(self) -> int:
        self.transitions.append([])
        return len(self.transitions) - 1


def _build_nfa(node) -> _NFA:
    nfa = _NFA(start=0, accept=0, transitions=[])

    def build(n) -> tuple[int, int]:
        kind = n[0]
        if kind == "empty":
            s = nfa.new_state()
            t = nfa.new_state()
            nfa.transitions[s].append((None, t))
            return s, t
        if kind == "char":
            s = nfa.new_state()
            t = nfa.new_state()
            nfa.transitions[s].append((n[1], t))
            return s, t
        if kind == "concat":
            first_s, prev_t = build(n[1][0])
            for part in n[1][1:]:
                s, t = build(part)
                nfa.transitions[prev_t].append((None, s))
                prev_t = t
            return first_s, prev_t
        if kind == "alt":
            s = nfa.new_state()
            t = nfa.new_state()
            for branch in n[1]:
                bs, bt = build(branch)
                nfa.transitions[s].append((None, bs))
                nfa.transitions[bt].append((None, t))
            return s, t
        if kind in ("star", "plus", "opt"):
            inner_s, inner_t = build(n[1])
            s = nfa.new_state()
            t = nfa.new_state()
            nfa.transitions[s].append((None, inner_s))
            if kind in ("star", "opt"):
                nfa.transitions[s].append((None, t))
            nfa.transitions[inner_t].append((None, t))
            if kind in ("star", "plus"):
                nfa.transitions[inner_t].append((None, inner_s))
            return s, t
        raise QueryParseError(f"unknown regex node {kind!r}")

    start, accept = build(node)
    nfa.start, nfa.accept = start, accept
    return nfa


# ---------------------------------------------------------------------------
# Subset construction -> DFA
# ---------------------------------------------------------------------------


class RegexMatcher:
    """A DFA-backed matcher for one pattern (unanchored search).

    The DFA is built eagerly with an alphabet compressed to the byte
    classes the pattern distinguishes — the same trick hardware regex
    engines use to keep transition tables small.
    """

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        ast = _Parser(pattern).parse()
        nfa = _build_nfa(ast)
        self._nfa = nfa
        self._byte_class, num_classes = self._compress_alphabet(nfa)
        self._table, self._accepting = self._determinise(nfa, num_classes)

    # -- alphabet compression -------------------------------------------

    @staticmethod
    def _compress_alphabet(nfa: _NFA) -> tuple[list[int], int]:
        signatures: dict[int, list[int]] = {b: [] for b in _BYTE_RANGE}
        for state, edges in enumerate(nfa.transitions):
            for index, (byteset, _t) in enumerate(edges):
                if byteset is None:
                    continue
                for b in byteset:
                    signatures[b].append((state, index))
        classes: dict[tuple, int] = {}
        byte_class = [0] * 256
        for b in _BYTE_RANGE:
            key = tuple(signatures[b])
            if key not in classes:
                classes[key] = len(classes)
            byte_class[b] = classes[key]
        return byte_class, len(classes)

    # -- determinisation --------------------------------------------------

    def _epsilon_closure(self, states: frozenset[int]) -> frozenset[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for byteset, target in self._nfa.transitions[state]:
                if byteset is None and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def _determinise(self, nfa: _NFA, num_classes: int):
        # unanchored search: stay in the start closure on every byte
        start = self._epsilon_closure(frozenset({nfa.start}))
        # representative byte per class
        reps: dict[int, int] = {}
        for b in _BYTE_RANGE:
            reps.setdefault(self._byte_class[b], b)
        table: list[list[int]] = []
        accepting: list[bool] = []
        index: dict[frozenset[int], int] = {}

        def intern(states: frozenset[int]) -> int:
            if states not in index:
                index[states] = len(table)
                table.append([0] * num_classes)
                accepting.append(nfa.accept in states)
            return index[states]

        start_id = intern(start)
        work = [start]
        done = set()
        while work:
            current = work.pop()
            if current in done:
                continue
            done.add(current)
            cur_id = index[current]
            for cls, rep in reps.items():
                targets = set()
                for state in current:
                    for byteset, target in nfa.transitions[state]:
                        if byteset is not None and rep in byteset:
                            targets.add(target)
                nxt = self._epsilon_closure(frozenset(targets) | frozenset({nfa.start}))
                nxt_id = intern(nxt)
                table[cur_id][cls] = nxt_id
                if nxt not in done:
                    work.append(nxt)
        assert index[start] == start_id
        return table, accepting

    # -- matching ----------------------------------------------------------

    @property
    def dfa_states(self) -> int:
        return len(self._table)

    def search(self, data: bytes) -> bool:
        """True when the pattern occurs anywhere in ``data``."""
        state = 0
        if self._accepting[state]:
            return True
        table = self._table
        classes = self._byte_class
        accepting = self._accepting
        for byte in data:
            state = table[state][classes[byte]]
            if accepting[state]:
                return True
        return False


@dataclass(frozen=True)
class RegexPredicate:
    """A conjunction of (optionally negated) regex patterns over a line.

    This is how HARE-style engines express the paper's query class: each
    token becomes a word-boundary-free substring pattern, negations
    invert the verdict. Substring patterns are strictly more general than
    the token filter (they also match inside tokens).
    """

    positives: tuple[RegexMatcher, ...]
    negatives: tuple[RegexMatcher, ...] = ()

    @classmethod
    def of(
        cls, positives: Iterable[str], negatives: Iterable[str] = ()
    ) -> "RegexPredicate":
        return cls(
            positives=tuple(RegexMatcher(p) for p in positives),
            negatives=tuple(RegexMatcher(p) for p in negatives),
        )

    def matches(self, line: bytes) -> bool:
        return all(m.search(line) for m in self.positives) and not any(
            m.search(line) for m in self.negatives
        )


def escape_token(token: bytes) -> str:
    """Escape a literal token for use as a regex pattern."""
    special = set("[]().|*+?\\^")
    return "".join(
        "\\" + chr(b) if chr(b) in special else chr(b) for b in token
    )


class MultiByteMatcher:
    """A W-bytes-per-step DFA — HAWK's actual trick [68].

    HAWK reaches deterministic multi-GB/s by consuming W characters per
    cycle: the automaton's transition function is composed with itself W
    times, so one table lookup advances W input bytes. The cost is the
    widened alphabet (pairs, triples, ... of byte classes), which is
    exactly why HAWK's area grows steeply with W and its FPGA port had to
    cut parallelism — the resource story Section 7.4.3 leans on.

    Implementation: take the 1-byte DFA, make acceptance *sticky* (an
    absorbing accept state, so a match inside a W-byte block is not
    stepped over), then build the widened transition table over tuples of
    byte classes. Leftover tail bytes run through the 1-byte table.
    """

    def __init__(self, pattern: str, width: int = 2) -> None:
        if width < 1:
            raise QueryParseError("width must be at least 1")
        self.width = width
        self._single = RegexMatcher(pattern)
        table = [row[:] for row in self._single._table]
        accepting = list(self._single._accepting)
        num_classes = len(table[0]) if table else 0
        # sticky acceptance: accepting states absorb
        for state, accepts in enumerate(accepting):
            if accepts:
                table[state] = [state] * num_classes
        self._byte_class = self._single._byte_class
        self._accepting = accepting
        self._table1 = table
        self._wide = self._widen(table, num_classes, width)
        self._num_classes = num_classes

    @property
    def wide_table_entries(self) -> int:
        """Size of the widened table — the area proxy for HAWK scaling."""
        return sum(len(row) for row in self._wide)

    @staticmethod
    def _widen(table: list[list[int]], num_classes: int, width: int):
        """Compose the transition function with itself ``width`` times.

        The widened table is indexed by a radix-``num_classes`` tuple
        code, matching how hardware would wire W class decoders.
        """
        wide: list[list[int]] = []
        tuple_count = num_classes**width
        for state in range(len(table)):
            row = [0] * tuple_count
            for code in range(tuple_count):
                s = state
                rest = code
                # most-significant class first = first byte of the block
                for shift in range(width - 1, -1, -1):
                    cls = (rest // (num_classes**shift)) % num_classes
                    s = table[s][cls]
                row[code] = s
            wide.append(row)
        return wide

    def search(self, data: bytes) -> bool:
        state = 0
        if self._accepting[state]:
            return True
        classes = self._byte_class
        n = len(data)
        w = self.width
        nc = self._num_classes
        block_end = n - n % w
        pos = 0
        while pos < block_end:
            code = 0
            for i in range(w):
                code = code * nc + classes[data[pos + i]]
            state = self._wide[state][code]
            if self._accepting[state]:
                return True
            pos += w
        while pos < n:
            state = self._table1[state][classes[data[pos]]]
            if self._accepting[state]:
                return True
            pos += 1
        return False


# ---------------------------------------------------------------------------
# HARE throughput/area model (published figures)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HareModel:
    """HARE's published FPGA operating point [13]."""

    bytes_per_sec: float = 400e6  # FPGA prototype: 400 MB/s
    kluts: float = 55.0  # ~12% of an Arria V ~ 55K LEs
    asic_bytes_per_sec: float = 32e9  # projected 1 GHz ASIC

    @property
    def kluts_per_gbps(self) -> float:
        return self.kluts / (self.bytes_per_sec / 1e9)

    def scan_seconds(self, nbytes: int) -> float:
        return nbytes / self.bytes_per_sec
