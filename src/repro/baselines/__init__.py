"""Software comparators (Sections 7.4.2 and 7.5).

Real software engines — they scan and match actual bytes — paired with
calibrated analytic cost models that map the work they do onto the
paper's comparison platform (i7-8700K, 7 GB/s NVMe RAID):

- :mod:`repro.baselines.scandb` — a MonetDB-like single-VARCHAR full-scan
  column engine (CPU-bound, degrades with query term count),
- :mod:`repro.baselines.splunklike` — a Splunk-like indexed search engine
  (single thread per query, ÷12 hyper-thread amortization as in the
  paper's methodology),
- :mod:`repro.baselines.grep` — a naive scanner used as a correctness
  oracle everywhere.
"""

from repro.baselines.grep import grep_lines
from repro.baselines.scandb import ScanDatabase, ScanDbCostModel
from repro.baselines.splunklike import SplunkLikeEngine, SplunkCostModel

__all__ = [
    "ScanDatabase",
    "ScanDbCostModel",
    "SplunkCostModel",
    "SplunkLikeEngine",
    "grep_lines",
]
