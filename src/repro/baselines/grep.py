"""Naive scan baseline: the correctness oracle.

Evaluates a query's reference semantics against every line. Every other
engine in this repository — the hardware filter model, the index-assisted
system, both software baselines — must produce exactly this result set.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.query import Query


def grep_lines(query: Query, lines: Iterable[bytes]) -> list[bytes]:
    """All lines matching the query, in input order."""
    return [line for line in lines if query.matches_line(line)]


def grep_indices(query: Query, lines: Sequence[bytes]) -> list[int]:
    """Indices of matching lines, in input order."""
    return [i for i, line in enumerate(lines) if query.matches_line(line)]
