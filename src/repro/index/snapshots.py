"""Coarse time-based snapshot index (Section 6.3).

Whenever the number of leaf pages created since the last snapshot exceeds
a threshold, the in-memory hash table is flushed and the flush event is
recorded with its timestamp and the data-page watermark at that moment.
Time-range queries then map to a data-page address range, which bounds
any token query's candidate set.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Snapshot:
    """One flush event: everything before ``data_page_watermark`` is older
    than ``timestamp``."""

    timestamp: float
    data_page_watermark: int
    leaf_pages_at_flush: int


class SnapshotIndex:
    """Sorted record of flush events supporting time-range lookups."""

    def __init__(self, leaf_page_threshold: int) -> None:
        if leaf_page_threshold <= 0:
            raise ValueError("leaf_page_threshold must be positive")
        self.leaf_page_threshold = leaf_page_threshold
        self._snapshots: list[Snapshot] = []
        self._leaf_pages_at_last_flush = 0

    @property
    def snapshots(self) -> tuple[Snapshot, ...]:
        return tuple(self._snapshots)

    def should_flush(self, leaf_pages_created: int) -> bool:
        """True once enough leaf pages accumulated since the last snapshot."""
        return (
            leaf_pages_created - self._leaf_pages_at_last_flush
            >= self.leaf_page_threshold
        )

    def record_flush(
        self, timestamp: float, data_page_watermark: int, leaf_pages_created: int
    ) -> Snapshot:
        if self._snapshots and timestamp < self._snapshots[-1].timestamp:
            raise ValueError("snapshot timestamps must be non-decreasing")
        snap = Snapshot(
            timestamp=timestamp,
            data_page_watermark=data_page_watermark,
            leaf_pages_at_flush=leaf_pages_created,
        )
        self._snapshots.append(snap)
        self._leaf_pages_at_last_flush = leaf_pages_created
        return snap

    def to_state(self) -> dict:
        return {
            "snapshots": [
                [s.timestamp, s.data_page_watermark, s.leaf_pages_at_flush]
                for s in self._snapshots
            ],
            "leaf_pages_at_last_flush": self._leaf_pages_at_last_flush,
        }

    def restore_state(self, state: dict) -> None:
        self._snapshots = [
            Snapshot(
                timestamp=float(t),
                data_page_watermark=int(w),
                leaf_pages_at_flush=int(ln),
            )
            for t, w, ln in state["snapshots"]
        ]
        self._leaf_pages_at_last_flush = int(state["leaf_pages_at_last_flush"])

    def page_range_for_time(
        self, start_time: Optional[float], end_time: Optional[float]
    ) -> tuple[int, Optional[int]]:
        """Data-page address bounds covering [start_time, end_time].

        Returns ``(first_page, last_page_exclusive)``; ``None`` for the
        upper bound means "no snapshot bounds it yet" (i.e. up to the
        current end of the log). The bounds are conservative: they may
        include extra pages (snapshots are coarse), never exclude valid
        ones.
        """
        times = [s.timestamp for s in self._snapshots]
        low = 0
        if start_time is not None:
            # last snapshot strictly before start_time: data before its
            # watermark is certainly older than start_time
            idx = bisect.bisect_left(times, start_time) - 1
            if idx >= 0:
                low = self._snapshots[idx].data_page_watermark
        high: Optional[int] = None
        if end_time is not None:
            # first snapshot at/after end_time bounds the range above
            idx = bisect.bisect_right(times, end_time)
            if idx < len(self._snapshots):
                high = self._snapshots[idx].data_page_watermark
        return low, high
