"""In-storage inverted index (Section 6).

A probabilistic, storage-resident inverted index tuned for the
accelerator: a small in-memory hash table (two hash functions, 16-address
buffers, occupancy counters) in front of an in-storage linked list of
height-two trees (16-ary roots over 16-ary leaves, so each latency-bound
list hop yields up to 256 data-page addresses).

- :mod:`repro.index.storetree` — node pools and the list-of-trees layout,
- :mod:`repro.index.hashindex` — the two-hash-function in-memory table,
- :mod:`repro.index.snapshots` — coarse time-based snapshot indexing,
- :mod:`repro.index.inverted` — the :class:`InvertedIndex` facade.
"""

from repro.index.bloom import BloomSystemIndex, PageBloomIndex
from repro.index.compaction import compact_index
from repro.index.inverted import InvertedIndex
from repro.index.snapshots import SnapshotIndex

__all__ = [
    "BloomSystemIndex",
    "InvertedIndex",
    "PageBloomIndex",
    "SnapshotIndex",
    "compact_index",
]
