"""Index compaction.

The in-storage index is append-only: every snapshot flush persists
partially-filled leaves and roots (padded with NIL), so a long-lived,
frequently-flushed store accumulates fragmented lists — more root hops
per query than the postings justify, each hop a latency-bound storage
access (Section 6.1's arithmetic). Compaction rebuilds a row's list into
dense 16/16 nodes: identical query answers, minimal root visits.

Old nodes are not reclaimed by the plain pools (append-only flash
semantics); on an FTL-backed array the superseded index pages become
garbage for the translation layer to collect, which is exactly how a
real SSD-resident index ages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.hashindex import RowState
from repro.index.inverted import InvertedIndex
from repro.index.storetree import NIL, NODE_FANOUT


@dataclass(frozen=True)
class RowCompaction:
    """Outcome of compacting one row."""

    row_id: int
    addresses: int
    root_visits_before: int
    root_visits_after: int


@dataclass(frozen=True)
class CompactionReport:
    """Aggregate outcome over all rows."""

    rows: tuple[RowCompaction, ...]

    @property
    def total_visits_before(self) -> int:
        return sum(r.root_visits_before for r in self.rows)

    @property
    def total_visits_after(self) -> int:
        return sum(r.root_visits_after for r in self.rows)

    @property
    def visits_saved(self) -> int:
        return self.total_visits_before - self.total_visits_after


def _collect_row_addresses(index: InvertedIndex, row: RowState) -> tuple[list[int], int]:
    """Everything a row currently references, plus its walk cost."""
    from repro.index.storetree import LeafNode

    addresses: set[int] = set(row.buffer)
    visits = 0
    if row.partial_root:
        for blob in index.store.leaves.read_many(list(row.partial_root)):
            addresses.update(LeafNode.unpack(blob).addresses)
    if row.head_root != NIL:
        walk = index.store.walk(row.head_root)
        addresses.update(walk.addresses)
        visits = walk.root_visits
    return sorted(addresses), visits


def compact_row(index: InvertedIndex, row_id: int) -> RowCompaction:
    """Rebuild one row's in-storage list into dense nodes."""
    row = index.table.row(row_id)
    addresses, visits_before = _collect_row_addresses(index, row)

    # rebuild: oldest addresses persist first so traversal (newest root
    # first) keeps its reverse-chronological meaning
    full_leaf_addrs = len(addresses) - len(addresses) % NODE_FANOUT
    leaf_ids = [
        index.store.write_leaf(addresses[base : base + NODE_FANOUT])
        for base in range(0, full_leaf_addrs, NODE_FANOUT)
    ]
    head = NIL
    full_root_leaves = len(leaf_ids) - len(leaf_ids) % NODE_FANOUT
    for base in range(0, full_root_leaves, NODE_FANOUT):
        head = index.store.write_root(
            leaf_ids[base : base + NODE_FANOUT], next_root=head
        )
    row.head_root = head
    row.partial_root = leaf_ids[full_root_leaves:]
    row.buffer = addresses[full_leaf_addrs:]
    # total_pages is a balancing counter, not a postings count: keep it

    visits_after = len(leaf_ids[:full_root_leaves]) // NODE_FANOUT
    return RowCompaction(
        row_id=row_id,
        addresses=len(addresses),
        root_visits_before=visits_before,
        root_visits_after=visits_after,
    )


def compact_index(index: InvertedIndex) -> CompactionReport:
    """Compact every populated row of the index."""
    rows = []
    for row_id in sorted(index.table._rows):
        rows.append(compact_row(index, row_id))
    index.store.flush()
    return CompactionReport(rows=tuple(rows))
