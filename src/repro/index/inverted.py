"""The inverted-index facade (Section 6).

Ties the in-memory two-hash table, the in-storage tree lists and the
snapshot index together behind the two operations the system needs:

- :meth:`InvertedIndex.index_page` during ingest (one call per stored
  data page with that page's token set),
- :meth:`InvertedIndex.candidate_pages` during query: map a
  union-of-intersections query to the sorted set of data pages that must
  be read and filtered. The result is a **superset** of the truly
  matching pages (the table is probabilistic and negative terms cannot
  be indexed); the filter engine removes the false positives, so
  correctness never depends on the index (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.query import Query
from repro.errors import LogIndexError
from repro.obs.metrics import get_registry
from repro.index.hashindex import HashIndexTable
from repro.index.snapshots import SnapshotIndex
from repro.index.storetree import NIL, TreeListStore
from repro.params import PAGE_BYTES, IndexParams
from repro.sim.clock import SimClock
from repro.storage.flash import FlashArray


@dataclass
class IndexLookupStats:
    """Accounting for one query's index traversal."""

    tokens_looked_up: int = 0
    root_visits: int = 0
    candidate_pages: int = 0
    full_scan: bool = False


@dataclass(frozen=True)
class IndexLookupResult:
    """Sorted candidate data pages plus traversal statistics."""

    pages: tuple[int, ...]
    stats: IndexLookupStats

    def selectivity(self, total_data_pages: int) -> float:
        """Fraction of the store this query must still read (lower is
        better); 1.0 means the index saved nothing."""
        if total_data_pages == 0:
            return 0.0
        return len(self.pages) / total_data_pages


class InvertedIndex:
    """Storage-optimized probabilistic inverted index."""

    def __init__(
        self,
        flash: FlashArray,
        params: Optional[IndexParams] = None,
        page_bytes: int = PAGE_BYTES,
        seed: int = 0,
    ) -> None:
        self.params = params if params is not None else IndexParams()
        self.table = HashIndexTable(self.params, seed=seed)
        self.store = TreeListStore(flash, page_bytes)
        self.snapshots = SnapshotIndex(self.params.snapshot_leaf_threshold)
        self._data_pages: list[int] = []  # ascending (append-only ingest)
        registry = get_registry()
        if registry is not None:
            self._m_lookups = registry.counter(
                "mithrilog_index_lookups_total", "Inverted-index token lookups"
            )
            self._m_root_visits = registry.counter(
                "mithrilog_index_root_visits_total",
                "Root-node hops paid during index traversal",
            )
            self._m_full_scans = registry.counter(
                "mithrilog_index_full_scans_total",
                "Queries the index could not narrow (full-scan fallback)",
            )
            self._m_pages_indexed = registry.counter(
                "mithrilog_index_pages_indexed_total", "Data pages indexed"
            )
            self._m_memory = registry.gauge(
                "mithrilog_index_memory_bytes",
                "In-memory footprint of the ingest-side index state",
            )
        else:
            self._m_lookups = None
            self._m_root_visits = None
            self._m_full_scans = None
            self._m_pages_indexed = None
            self._m_memory = None

    # -- ingest --------------------------------------------------------

    @property
    def data_pages(self) -> tuple[int, ...]:
        return tuple(self._data_pages)

    @property
    def total_data_pages(self) -> int:
        return len(self._data_pages)

    def index_page(
        self,
        page_addr: int,
        tokens: Iterable[bytes],
        timestamp: Optional[float] = None,
    ) -> None:
        """Index one stored data page under its (unique) token set.

        Pages must arrive in ascending address order — logs are
        append-only, and the chronology arguments of Section 6.3 rely on
        it.
        """
        if self._data_pages and page_addr <= self._data_pages[-1]:
            raise LogIndexError(
                f"data page {page_addr} indexed out of append order "
                f"(last was {self._data_pages[-1]})"
            )
        self._data_pages.append(page_addr)
        if self._m_pages_indexed is not None:
            self._m_pages_indexed.inc()
        for token in sorted(set(tokens)):  # sorted: deterministic balancing
            self.table.insert(token, page_addr, self.store)
        if timestamp is not None and self.snapshots.should_flush(
            self.store.leaves.pages_spilled
        ):
            self.flush(timestamp)

    def flush(self, timestamp: float = 0.0) -> None:
        """Persist all partial state and record a snapshot."""
        self.table.flush_all(self.store)
        watermark = self._data_pages[-1] + 1 if self._data_pages else 0
        self.snapshots.record_flush(
            timestamp=timestamp,
            data_page_watermark=watermark,
            leaf_pages_created=self.store.leaves.pages_spilled,
        )

    def memory_footprint_bytes(self) -> int:
        """In-memory ingest state, the paper's small-footprint claim."""
        return (
            self.table.memory_footprint_bytes()
            + self.store.memory_footprint_bytes
            + 4 * len(self._data_pages)
        )

    def lookup_seconds(
        self, stats: "IndexLookupStats", latency_s: float
    ) -> float:
        """Modelled traversal time: each posting fetch and each root hop
        is one latency-bound storage access (Section 6.1)."""
        return (stats.root_visits + stats.tokens_looked_up) * latency_s

    # -- query ---------------------------------------------------------

    def lookup_token(
        self, token: bytes, clock: Optional[SimClock] = None
    ) -> tuple[list[int], int]:
        """Candidate pages for one token: union of its (two) rows.

        Returns ``(sorted pages, root visits)``. Traversal yields pages
        in reverse-chronological order; per Section 6.3 the (small)
        result is reversed back — ascending page address *is*
        chronological order in an append-only log.
        """
        pages: set[int] = set()
        visits = 0
        for row_id in self.table.candidate_rows(token):
            row = self.table.peek_row(row_id)
            if row is None:
                continue
            pages.update(row.buffer)
            if row.partial_root:
                blobs = self.store.leaves.read_many(list(row.partial_root), clock=clock)
                from repro.index.storetree import LeafNode

                for blob in blobs:
                    pages.update(LeafNode.unpack(blob).addresses)
            if row.head_root != NIL:
                walk = self.store.walk(row.head_root, clock=clock)
                pages.update(walk.addresses)
                visits += walk.root_visits
        return sorted(pages), visits

    def candidate_pages(
        self,
        query: Query,
        clock: Optional[SimClock] = None,
        time_range: Optional[tuple[Optional[float], Optional[float]]] = None,
    ) -> IndexLookupResult:
        """Candidate data pages for a full query.

        Positive terms intersect within an intersection set; sets union.
        A set with no positive terms (only negations) cannot be narrowed
        by the index and forces a scan of the whole (time-bounded) range
        — exactly the behaviour Section 7.5 observes on negative-heavy
        queries.
        """
        stats = IndexLookupStats()
        low, high = 0, None
        if time_range is not None:
            low, high = self.snapshots.page_range_for_time(*time_range)

        candidates: set[int] = set()
        for iset in query.intersections:
            positives = iset.positives
            if not positives:
                stats.full_scan = True
                candidates.update(self._data_pages)
                continue
            set_pages: Optional[set[int]] = None
            for term in positives:
                pages, visits = self.lookup_token(term.token, clock=clock)
                stats.tokens_looked_up += 1
                stats.root_visits += visits
                set_pages = (
                    set(pages) if set_pages is None else set_pages & set(pages)
                )
                if not set_pages:
                    break
            candidates.update(set_pages or ())

        bounded = [
            p for p in sorted(candidates) if p >= low and (high is None or p < high)
        ]
        stats.candidate_pages = len(bounded)
        if self._m_lookups is not None:
            if stats.tokens_looked_up:
                self._m_lookups.inc(stats.tokens_looked_up)
            if stats.root_visits:
                self._m_root_visits.inc(stats.root_visits)
            if stats.full_scan:
                self._m_full_scans.inc()
            self._m_memory.set(self.memory_footprint_bytes())
        return IndexLookupResult(pages=tuple(bounded), stats=stats)
