"""In-storage linked list of height-two trees (Section 6.1).

The index's storage layout is built from two node pools on the shared
flash array:

- a **leaf pool** of 16-entry leaf nodes (16 x u32 data-page addresses),
- a **root pool** of root nodes (16 x u32 leaf-node ids, a u32 next-root
  pointer forming the linked list, and a u32 entry count).

Node ids are ``page_sequence * slots_per_page + slot`` within a pool;
each pool tracks which flash pages it occupies. A pool buffers its tail
page in memory and spills full pages to flash, so per-row ingest memory
stays tiny — the whole point of the design (Section 6.1's contrast with
naive large index nodes).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import LogIndexError
from repro.obs.metrics import get_registry
from repro.sim.clock import SimClock
from repro.storage.flash import FlashArray
from repro.storage.page import Page

#: Sentinel for "no node" in next pointers and padding.
NIL = 0xFFFFFFFF

#: Entries per tree node (root fan-out == leaf fan-out == 16 in the paper).
NODE_FANOUT = 16

_LEAF_STRUCT = struct.Struct("<16I")  # 16 data-page addresses
_ROOT_STRUCT = struct.Struct("<16III")  # 16 leaf ids, next root id, count

#: Root nodes are padded to a power-of-two slot so they pack evenly into
#: 4 KB index pages (72 payload bytes -> 128-byte slots, 32 per page).
_ROOT_NODE_BYTES = 128


class NodePool:
    """Fixed-size-node storage pool over a shared flash array."""

    def __init__(self, flash: FlashArray, node_bytes: int, page_bytes: int) -> None:
        if page_bytes % node_bytes:
            raise LogIndexError(
                f"page size {page_bytes} not a multiple of node size {node_bytes}"
            )
        self.flash = flash
        self.node_bytes = node_bytes
        self.page_bytes = page_bytes
        self.slots_per_page = page_bytes // node_bytes
        self._page_addrs: list[int] = []  # pool page sequence -> flash address
        self._tail: bytearray = bytearray()
        self._next_node_id = 0
        self.nodes_written = 0

    @property
    def pages_spilled(self) -> int:
        return len(self._page_addrs)

    @property
    def memory_footprint_bytes(self) -> int:
        """Tail buffer plus the page-address map."""
        return len(self._tail) + 4 * len(self._page_addrs)

    def append(self, node: bytes) -> int:
        """Store one node; returns its node id."""
        if len(node) != self.node_bytes:
            raise LogIndexError(
                f"node of {len(node)} bytes in a {self.node_bytes}-byte pool"
            )
        self._tail.extend(node)
        node_id = self._next_node_id
        self._next_node_id += 1
        self.nodes_written += 1
        if len(self._tail) == self.page_bytes:
            self._spill_tail()
        return node_id

    def _spill_tail(self) -> None:
        addr = self.flash.append_page(Page(bytes(self._tail)))
        self._page_addrs.append(addr)
        self._tail.clear()

    def flush(self) -> None:
        """Spill a partial tail page (padded with 0xFF) to flash."""
        if self._tail:
            pad = self.page_bytes - len(self._tail)
            self._tail.extend(b"\xff" * pad)
            self._spill_tail()
            # account for the padded slots so ids keep mapping correctly
            self._next_node_id = self.pages_spilled * self.slots_per_page

    def read(self, node_id: int, clock: Optional[SimClock] = None) -> bytes:
        """Fetch one node; charges a flash page access when persisted."""
        if not 0 <= node_id < self._next_node_id:
            raise LogIndexError(f"node id {node_id} was never written")
        seq, slot = divmod(node_id, self.slots_per_page)
        if seq < len(self._page_addrs):
            page = self.flash.read_page(self._page_addrs[seq], clock=clock)
            data = page.data
        else:
            data = bytes(self._tail)  # still buffered in memory: free access
        start = slot * self.node_bytes
        node = data[start : start + self.node_bytes]
        if len(node) != self.node_bytes:
            raise LogIndexError(f"node id {node_id} not materialised yet")
        return node

    def to_state(self) -> dict:
        """JSON-serialisable snapshot of the pool's in-memory side."""
        return {
            "page_addrs": list(self._page_addrs),
            "tail_hex": bytes(self._tail).hex(),
            "next_node_id": self._next_node_id,
            "nodes_written": self.nodes_written,
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the in-memory side from :meth:`to_state` output.

        The flash pages themselves live in the shared flash array, which
        is persisted separately.
        """
        self._page_addrs = [int(a) for a in state["page_addrs"]]
        self._tail = bytearray(bytes.fromhex(state["tail_hex"]))
        self._next_node_id = int(state["next_node_id"])
        self.nodes_written = int(state["nodes_written"])

    def read_many(
        self, node_ids: list[int], clock: Optional[SimClock] = None
    ) -> list[bytes]:
        """Fetch several nodes, charging each distinct flash page once.

        This is the "many parallel leaf node accesses" behaviour the tree
        design exists for: a root's 16 leaves usually live on one or two
        sequential leaf pages.
        """
        needed_pages: list[int] = []
        for node_id in node_ids:
            seq = node_id // self.slots_per_page
            if seq < len(self._page_addrs):
                addr = self._page_addrs[seq]
                if addr not in needed_pages:
                    needed_pages.append(addr)
        if clock is not None and needed_pages:
            self.flash.read_pages(sorted(needed_pages), clock=clock)
        return [self.read(node_id, clock=None) for node_id in node_ids]


@dataclass(frozen=True)
class LeafNode:
    """16 data-page addresses (padded with NIL)."""

    addresses: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.addresses) > NODE_FANOUT:
            raise LogIndexError("leaf node overflow")

    def pack(self) -> bytes:
        padded = self.addresses + (NIL,) * (NODE_FANOUT - len(self.addresses))
        return _LEAF_STRUCT.pack(*padded)

    @classmethod
    def unpack(cls, data: bytes) -> "LeafNode":
        values = _LEAF_STRUCT.unpack(data)
        return cls(addresses=tuple(v for v in values if v != NIL))


@dataclass(frozen=True)
class RootNode:
    """Up to 16 leaf ids plus the linked-list next pointer."""

    leaf_ids: tuple[int, ...]
    next_root: int  # node id of the next (older) root, or NIL

    def __post_init__(self) -> None:
        if len(self.leaf_ids) > NODE_FANOUT:
            raise LogIndexError("root node overflow")

    def pack(self) -> bytes:
        padded = self.leaf_ids + (NIL,) * (NODE_FANOUT - len(self.leaf_ids))
        payload = _ROOT_STRUCT.pack(*padded, self.next_root, len(self.leaf_ids))
        return payload + b"\0" * (_ROOT_NODE_BYTES - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "RootNode":
        *leaves, next_root, count = _ROOT_STRUCT.unpack(data[: _ROOT_STRUCT.size])
        if count == 0xFFFFFFFF:  # flush padding slot
            return cls(leaf_ids=(), next_root=NIL)
        return cls(leaf_ids=tuple(leaves[:count]), next_root=next_root)


@dataclass(frozen=True)
class WalkResult:
    """Outcome of traversing one row's linked list of trees."""

    addresses: list[int]
    root_visits: int


class TreeListStore:
    """The on-flash side of the index: leaf and root pools plus traversal."""

    def __init__(self, flash: FlashArray, page_bytes: int) -> None:
        self.leaves = NodePool(flash, _LEAF_STRUCT.size, page_bytes)
        self.roots = NodePool(flash, _ROOT_NODE_BYTES, page_bytes)
        registry = get_registry()
        self._m_node_visits = (
            registry.counter(
                "mithrilog_index_node_visits_total",
                "Tree nodes visited during index traversal",
            )
            if registry is not None
            else None
        )

    def write_leaf(self, addresses: list[int]) -> int:
        return self.leaves.append(LeafNode(addresses=tuple(addresses)).pack())

    def write_root(self, leaf_ids: list[int], next_root: int) -> int:
        return self.roots.append(
            RootNode(leaf_ids=tuple(leaf_ids), next_root=next_root).pack()
        )

    def flush(self) -> None:
        self.leaves.flush()
        self.roots.flush()

    @property
    def memory_footprint_bytes(self) -> int:
        return self.leaves.memory_footprint_bytes + self.roots.memory_footprint_bytes

    def walk(self, head_root: int, clock: Optional[SimClock] = None) -> "WalkResult":
        """Collect all data-page addresses reachable from a list head.

        Returns them in traversal order: newest root first, a root's
        leaves in insertion order (i.e. reverse-chronological by root, as
        Section 6.3 describes). Each root visit is one latency-bound
        access; its leaves are fetched as one batched read.
        """
        addresses: list[int] = []
        root_id = head_root
        hops = 0
        leaves_visited = 0
        while root_id != NIL:
            hops += 1
            if hops > self.roots.nodes_written + 1:
                raise LogIndexError("root linked list contains a cycle")
            root = RootNode.unpack(self.roots.read(root_id, clock=clock))
            leaf_blobs = self.leaves.read_many(list(root.leaf_ids), clock=clock)
            leaves_visited += len(leaf_blobs)
            for blob in leaf_blobs:
                addresses.extend(LeafNode.unpack(blob).addresses)
            root_id = root.next_root
        if self._m_node_visits is not None and (hops or leaves_visited):
            self._m_node_visits.inc(hops + leaves_visited)
        return WalkResult(addresses=addresses, root_visits=hops)
