"""Per-page Bloom-filter index: the alternative indexing strategy.

Section 6 stresses that MithriLog's accelerator "can be coupled with any
indexing strategy that accesses storage, as long as the index can
generate a stream of page addresses". The natural competitor to an
inverted index for that job is a per-page Bloom filter (the design zone
maps / SuRF-style systems occupy): one small bit array per data page,
queried by testing each positive term against every page's filter.

Trade-offs this module lets the benches quantify against
:class:`repro.index.inverted.InvertedIndex`:

- memory is strictly proportional to data volume (bits per page), with
  no per-token state and no balancing concerns;
- lookup cost is O(pages) bit-tests per term instead of a posting
  traversal — cheap in memory, but candidate quality degrades with the
  false-positive rate instead of with row collisions;
- like the inverted index it is probabilistic-superset: false positives
  only cost filter work, never correctness.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.query import Query
from repro.errors import LogIndexError


@dataclass(frozen=True)
class BloomParams:
    """Sizing of one per-page filter."""

    bits: int = 2048  # 256 bytes per 4 KB page: ~6% space overhead
    hashes: int = 4

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.bits & (self.bits - 1):
            raise LogIndexError("bloom bits must be a positive power of two")
        if self.hashes <= 0:
            raise LogIndexError("bloom needs at least one hash")

    def false_positive_rate(self, items: int) -> float:
        """The textbook FPR estimate for ``items`` inserted tokens."""
        if items == 0:
            return 0.0
        return (1 - math.exp(-self.hashes * items / self.bits)) ** self.hashes


class BloomFilter:
    """A fixed-size Bloom filter over byte tokens."""

    def __init__(self, params: Optional[BloomParams] = None, seed: int = 0) -> None:
        self.params = params if params is not None else BloomParams()
        self.seed = seed
        self._bits = 0
        self.items = 0

    def _positions(self, token: bytes) -> list[int]:
        digest = hashlib.blake2b(
            token, digest_size=8 * self.params.hashes,
            key=self.seed.to_bytes(8, "little"),
        ).digest()
        mask = self.params.bits - 1
        return [
            int.from_bytes(digest[8 * i : 8 * (i + 1)], "little") & mask
            for i in range(self.params.hashes)
        ]

    def add(self, token: bytes) -> None:
        for position in self._positions(token):
            self._bits |= 1 << position
        self.items += 1

    def __contains__(self, token: bytes) -> bool:
        return all(self._bits & (1 << p) for p in self._positions(token))

    @property
    def memory_bytes(self) -> int:
        return self.params.bits // 8


class PageBloomIndex:
    """One Bloom filter per data page, same candidate API as the inverted
    index (minus the in-storage machinery it doesn't need)."""

    def __init__(self, params: Optional[BloomParams] = None, seed: int = 0) -> None:
        self.params = params if params is not None else BloomParams()
        self.seed = seed
        self._filters: dict[int, BloomFilter] = {}
        self._order: list[int] = []

    @property
    def total_data_pages(self) -> int:
        return len(self._filters)

    def index_page(self, page_addr: int, tokens: Iterable[bytes]) -> None:
        if self._order and page_addr <= self._order[-1]:
            raise LogIndexError(
                f"page {page_addr} indexed out of append order"
            )
        bloom = BloomFilter(self.params, seed=self.seed)
        for token in set(tokens):
            bloom.add(token)
        self._filters[page_addr] = bloom
        self._order.append(page_addr)

    def lookup_token(self, token: bytes) -> list[int]:
        """Pages whose filter cannot rule the token out."""
        return [addr for addr in self._order if token in self._filters[addr]]

    def candidate_pages(self, query: Query) -> list[int]:
        """Superset of matching pages (positive terms only, like Sec. 6)."""
        candidates: set[int] = set()
        for iset in query.intersections:
            positives = iset.positives
            if not positives:
                candidates.update(self._order)
                continue
            acc: Optional[set[int]] = None
            for term in positives:
                pages = set(self.lookup_token(term.token))
                acc = pages if acc is None else acc & pages
                if not acc:
                    break
            candidates.update(acc or ())
        return sorted(candidates)

    def memory_footprint_bytes(self) -> int:
        return sum(f.memory_bytes for f in self._filters.values())

    def mean_false_positive_rate(self) -> float:
        if not self._filters:
            return 0.0
        rates = [
            f.params.false_positive_rate(f.items) for f in self._filters.values()
        ]
        return sum(rates) / len(rates)


class BloomSystemIndex:
    """Drop-in system index backed by per-page Bloom filters.

    Implements the same surface :class:`repro.system.MithriLogSystem`
    drives on :class:`repro.index.inverted.InvertedIndex` — ingest,
    candidate lookup with time bounds, snapshots, memory accounting — so
    a system can be constructed with either strategy and the whole
    evaluation reruns unchanged. Bloom lookups are pure host-memory
    bit-tests, so the traversal statistics report zero storage hops.
    """

    def __init__(
        self,
        flash=None,  # accepted for interface parity; blooms live in memory
        params: Optional[BloomParams] = None,
        page_bytes: int = 4096,
        seed: int = 0,
        snapshot_leaf_threshold: int = 1024,
    ) -> None:
        from repro.index.snapshots import SnapshotIndex

        self._index = PageBloomIndex(params, seed=seed)
        self.snapshots = SnapshotIndex(snapshot_leaf_threshold)

    @property
    def data_pages(self) -> tuple[int, ...]:
        return tuple(self._index._order)

    @property
    def total_data_pages(self) -> int:
        return self._index.total_data_pages

    def index_page(
        self,
        page_addr: int,
        tokens: Iterable[bytes],
        timestamp: Optional[float] = None,
    ) -> None:
        self._index.index_page(page_addr, tokens)

    def flush(self, timestamp: float = 0.0) -> None:
        """Record a snapshot (there is no buffered state to spill)."""
        watermark = (self._index._order[-1] + 1) if self._index._order else 0
        self.snapshots.record_flush(
            timestamp=timestamp,
            data_page_watermark=watermark,
            leaf_pages_created=self._index.total_data_pages,
        )

    def memory_footprint_bytes(self) -> int:
        return self._index.memory_footprint_bytes()

    #: Host-memory bit-test cost per page filter probed.
    PROBE_SECONDS = 25e-9

    def lookup_seconds(self, stats, latency_s: float) -> float:
        """Bloom lookups never touch storage: cost is one bit-test per
        page per positive term, on the host."""
        return stats.tokens_looked_up * self.total_data_pages * self.PROBE_SECONDS

    def candidate_pages(self, query: Query, clock=None, time_range=None):
        from repro.index.inverted import IndexLookupResult, IndexLookupStats

        stats = IndexLookupStats()
        low, high = 0, None
        if time_range is not None:
            low, high = self.snapshots.page_range_for_time(*time_range)
        pages = self._index.candidate_pages(query)
        stats.tokens_looked_up = sum(
            len(iset.positives) for iset in query.intersections
        )
        stats.full_scan = any(
            not iset.positives for iset in query.intersections
        )
        bounded = [p for p in pages if p >= low and (high is None or p < high)]
        stats.candidate_pages = len(bounded)
        return IndexLookupResult(pages=tuple(bounded), stats=stats)
