"""The in-memory side of the inverted index (Sections 6.1-6.2).

A fixed-size hash table indexed by *two* hash functions. The table is
probabilistic: it never stores tokens, so distinct tokens can share a
row; that only costs extra candidate pages, which the filter engine
discards (Section 6.2). During ingest a token's page address goes to
whichever of its two rows has accumulated fewer pages so far (each row
keeps a counter); during query both rows are read and unioned.

Each row holds the paper's small ingest state: a 16-address buffer, the
partially-built root node, the list head, and the counter.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.index.storetree import NIL, NODE_FANOUT, TreeListStore
from repro.params import IndexParams


@dataclass
class RowState:
    """Mutable per-row ingest state (a few dozen bytes each)."""

    buffer: list[int] = field(default_factory=list)  # pending data-page addrs
    partial_root: list[int] = field(default_factory=list)  # pending leaf ids
    head_root: int = NIL  # newest persisted root node id
    total_pages: int = 0  # counter used for two-choice balancing

    def memory_footprint_bytes(self) -> int:
        # buffer + partial root entries (u32 each) + head + counter
        return 4 * (len(self.buffer) + len(self.partial_root) + 2)


class HashIndexTable:
    """Two-hash-function row map in front of the store trees."""

    def __init__(self, params: Optional[IndexParams] = None, seed: int = 0) -> None:
        self.params = params if params is not None else IndexParams()
        self.seed = seed
        self._rows: dict[int, RowState] = {}

    def _hash(self, token: bytes, which: int) -> int:
        digest = hashlib.blake2b(
            token,
            digest_size=8,
            salt=(0x10 + which).to_bytes(8, "little"),
            key=self.seed.to_bytes(8, "little"),
        ).digest()
        return int.from_bytes(digest, "little") & (self.params.hash_rows - 1)

    def candidate_rows(self, token: bytes) -> tuple[int, ...]:
        """The rows a token may occupy (one or two per configuration)."""
        first = self._hash(token, 0)
        if self.params.num_hash_functions == 1:
            return (first,)
        return (first, self._hash(token, 1))

    def row(self, row_id: int) -> RowState:
        state = self._rows.get(row_id)
        if state is None:
            state = RowState()
            self._rows[row_id] = state
        return state

    def peek_row(self, row_id: int) -> Optional[RowState]:
        return self._rows.get(row_id)

    def choose_insert_row(self, token: bytes) -> int:
        """Two-choice balancing: insert into the lighter row (Section 6.2)."""
        candidates = self.candidate_rows(token)
        return min(candidates, key=lambda r: self.row(r).total_pages)

    def insert(self, token: bytes, page_addr: int, store: TreeListStore) -> None:
        """Record that ``token`` occurs in data page ``page_addr``.

        Spills the 16-address buffer into a leaf node when full, and the
        16-leaf partial root into a persisted root (prepended to the
        linked list) when that fills.
        """
        row = self.row(self.choose_insert_row(token))
        if row.buffer and row.buffer[-1] == page_addr:
            return  # this page is already recorded for this row
        row.buffer.append(page_addr)
        row.total_pages += 1
        if len(row.buffer) == self.params.memory_buffer_addrs:
            self._spill_buffer(row, store)

    def _spill_buffer(self, row: RowState, store: TreeListStore) -> None:
        # buffers larger than a leaf (naive-list ablation configs) chunk
        # into several leaves; the prototype's 16-entry buffer fills one
        for base in range(0, len(row.buffer), NODE_FANOUT):
            leaf_id = store.write_leaf(row.buffer[base : base + NODE_FANOUT])
            row.partial_root.append(leaf_id)
            if len(row.partial_root) == NODE_FANOUT:
                row.head_root = store.write_root(
                    row.partial_root, next_root=row.head_root
                )
                row.partial_root = []
        row.buffer = []

    def flush_all(self, store: TreeListStore) -> None:
        """Persist every partial buffer/root (snapshot or shutdown path)."""
        for row in self._rows.values():
            if row.buffer:
                self._spill_buffer(row, store)
            if row.partial_root:
                row.head_root = store.write_root(
                    row.partial_root, next_root=row.head_root
                )
                row.partial_root = []
        store.flush()

    def to_state(self) -> dict:
        """JSON-serialisable snapshot of every row's ingest state."""
        return {
            str(row_id): {
                "buffer": row.buffer,
                "partial_root": row.partial_root,
                "head_root": row.head_root,
                "total_pages": row.total_pages,
            }
            for row_id, row in self._rows.items()
        }

    def restore_state(self, state: dict) -> None:
        self._rows = {
            int(row_id): RowState(
                buffer=[int(a) for a in row["buffer"]],
                partial_root=[int(n) for n in row["partial_root"]],
                head_root=int(row["head_root"]),
                total_pages=int(row["total_pages"]),
            )
            for row_id, row in state.items()
        }

    @property
    def rows_in_use(self) -> int:
        return len(self._rows)

    def memory_footprint_bytes(self) -> int:
        """Total in-memory state — the paper's ~small-footprint claim."""
        return sum(r.memory_footprint_bytes() for r in self._rows.values())
