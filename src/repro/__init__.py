"""MithriLog reproduction: near-storage accelerated log analytics.

A from-scratch Python reproduction of *MithriLog: Near-Storage
Accelerator for High-Performance Log Analytics* (MICRO 2021): the
cuckoo-hash token filtering engine, the LZAH log-optimized compression
algorithm, the in-storage inverted index, FT-tree template queries, a
simulated flash device standing in for the BlueDBM prototype, and the
software baselines the paper compares against.

Quick start::

    from repro import MithriLogSystem, parse_query
    from repro.datasets import generator_for

    system = MithriLogSystem()
    system.ingest(generator_for("Liberty2").generate(20_000))
    outcome = system.query(parse_query('"failure" AND NOT "pbs_mom:"'))
    print(len(outcome.matched_lines), outcome.stats.elapsed_s)
"""

from repro.core import Query, Term, TokenFilterEngine, parse_query
from repro.core.tagger import TemplateTagger
from repro.compression import LZAHCompressor
from repro.index import InvertedIndex
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    get_logger,
    get_registry,
    render_prometheus,
    use_registry,
)
from repro.params import PROTOTYPE, SystemParams
from repro.service import QueryService, Request, TenantConfig
from repro.system import (
    ComparisonHarness,
    MithriLogSystem,
    QueryPlanner,
    QueryScheduler,
    StreamingIngestor,
    load_store,
    save_store,
)
from repro.templates import FTTree, build_workload

__version__ = "1.0.0"

__all__ = [
    "ComparisonHarness",
    "FTTree",
    "InvertedIndex",
    "LZAHCompressor",
    "MetricsRegistry",
    "MithriLogSystem",
    "PROTOTYPE",
    "Query",
    "QueryPlanner",
    "QueryScheduler",
    "QueryService",
    "Request",
    "SpanTracer",
    "StreamingIngestor",
    "SystemParams",
    "TemplateTagger",
    "TenantConfig",
    "Term",
    "TokenFilterEngine",
    "build_workload",
    "get_logger",
    "get_registry",
    "load_store",
    "parse_query",
    "render_prometheus",
    "save_store",
    "use_registry",
    "__version__",
]
