"""Log-optimized compression (Section 5).

The centerpiece is :mod:`repro.compression.lzah` — the paper's LZ Aligned
Header algorithm, a word-aligned LZRW1 derivative designed for one-word-
per-cycle hardware decompression. The package also carries the baselines
Table 5 compares against:

- :mod:`repro.compression.lzrw1` — faithful LZRW1 (Williams 1991),
- :mod:`repro.compression.lz4like` — an LZ4-block-format greedy compressor,
- :mod:`repro.compression.snappylike` — a Snappy block-format codec,
- :mod:`repro.compression.gziplike` — DEFLATE via :mod:`zlib`,

and :mod:`repro.compression.decoder_model`, the cycle model of the
hardware decoder in Figure 10.
"""

from repro.compression.arena import DecodeArena
from repro.compression.base import Compressor, compression_ratio
from repro.compression.gziplike import GzipCompressor
from repro.compression.lz4like import LZ4LikeCompressor
from repro.compression.lzah import LZAHCompressor
from repro.compression.lzrw1 import LZRW1Compressor
from repro.compression.snappylike import SnappyLikeCompressor

__all__ = [
    "Compressor",
    "DecodeArena",
    "GzipCompressor",
    "LZ4LikeCompressor",
    "LZAHCompressor",
    "LZRW1Compressor",
    "SnappyLikeCompressor",
    "compression_ratio",
]
