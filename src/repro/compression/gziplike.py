"""Gzip/DEFLATE baseline (Table 5's strongest-ratio row).

Uses :mod:`zlib` from the standard library — the same DEFLATE algorithm
gzip wraps, minus the file framing, which the ratio comparison does not
care about.
"""

from __future__ import annotations

import zlib

from repro.compression.base import Compressor
from repro.errors import CompressedFormatError


class GzipCompressor(Compressor):
    """DEFLATE at the default compression level, via zlib."""

    name = "Gzip"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CompressedFormatError(f"bad DEFLATE stream: {exc}") from exc
