"""LZRW1 (Ross Williams, 1991).

A faithful Python port of the original algorithm: a 4096-entry hash table
of recent positions, 3-byte hashing, copy items of 3..16 bytes within a
4095-byte window, and 16-item groups guarded by a 16-bit control word.
LZAH (Section 5) is derived from this algorithm, and Table 5 compares
against it, so the reproduction needs the real thing.

Stream format (as in the original, plus a 1-byte mode flag):

- ``flag`` byte: 0 = compressed, 1 = stored raw (used when compression
  would expand the data, mirroring the original's FLAG_COPY behaviour).
- Compressed body: repeated groups of [2-byte little-endian control word,
  up to 16 items]. Control bit ``i`` (LSB-first) set means item ``i`` is a
  copy: two bytes ``[high-nibble of offset | (length-3), low byte of
  offset]``; clear means a literal byte.
"""

from __future__ import annotations

from repro.compression.base import Compressor
from repro.errors import CompressedFormatError

_FLAG_COMPRESSED = 0
_FLAG_RAW = 1

_HASH_SIZE = 4096
_WINDOW = 4095
_MIN_MATCH = 3
_MAX_MATCH = 16
_ITEMS_PER_GROUP = 16


def _hash3(b0: int, b1: int, b2: int) -> int:
    """The original LZRW1 multiplicative 3-byte hash."""
    return ((40543 * (((b0 << 4) ^ b1) << 4 ^ b2)) >> 4) & (_HASH_SIZE - 1)


class LZRW1Compressor(Compressor):
    """Faithful LZRW1 encoder/decoder."""

    name = "LZRW1"

    def compress(self, data: bytes) -> bytes:
        body = self._compress_body(data)
        if len(body) >= len(data):
            return bytes([_FLAG_RAW]) + data
        return bytes([_FLAG_COMPRESSED]) + body

    def _compress_body(self, data: bytes) -> bytes:
        n = len(data)
        table = [0] * _HASH_SIZE  # stores position+1; 0 means empty
        out = bytearray()
        control = 0
        control_bits = 0
        group = bytearray()
        pos = 0

        def flush_group() -> None:
            nonlocal control, control_bits
            out.extend(control.to_bytes(2, "little"))
            out.extend(group)
            group.clear()
            control = 0
            control_bits = 0

        while pos < n:
            match_len = 0
            match_off = 0
            if pos + _MIN_MATCH <= n:
                h = _hash3(data[pos], data[pos + 1], data[pos + 2])
                candidate = table[h] - 1
                table[h] = pos + 1
                if candidate >= 0:
                    offset = pos - candidate
                    if 0 < offset <= _WINDOW:
                        limit = min(_MAX_MATCH, n - pos)
                        length = 0
                        while (
                            length < limit
                            and data[candidate + length] == data[pos + length]
                        ):
                            length += 1
                        if length >= _MIN_MATCH:
                            match_len = length
                            match_off = offset
            if match_len:
                control |= 1 << control_bits
                group.append(((match_off & 0xF00) >> 4) | (match_len - _MIN_MATCH))
                group.append(match_off & 0xFF)
                pos += match_len
            else:
                group.append(data[pos])
                pos += 1
            control_bits += 1
            if control_bits == _ITEMS_PER_GROUP:
                flush_group()
        if control_bits:
            # mark unused trailing items as literals that simply don't exist;
            # the decoder stops at end of stream
            flush_group()
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        if not data:
            raise CompressedFormatError("empty LZRW1 stream")
        flag, body = data[0], data[1:]
        if flag == _FLAG_RAW:
            return body
        if flag != _FLAG_COMPRESSED:
            raise CompressedFormatError(f"unknown LZRW1 flag byte {flag}")
        out = bytearray()
        pos = 0
        n = len(body)
        while pos < n:
            if pos + 2 > n:
                raise CompressedFormatError("truncated LZRW1 control word")
            control = int.from_bytes(body[pos : pos + 2], "little")
            pos += 2
            for bit in range(_ITEMS_PER_GROUP):
                if pos >= n:
                    break
                if control & (1 << bit):
                    if pos + 2 > n:
                        raise CompressedFormatError("truncated LZRW1 copy item")
                    b0, b1 = body[pos], body[pos + 1]
                    pos += 2
                    length = (b0 & 0x0F) + _MIN_MATCH
                    offset = ((b0 & 0xF0) << 4) | b1
                    if offset == 0 or offset > len(out):
                        raise CompressedFormatError(
                            f"LZRW1 copy offset {offset} outside window"
                        )
                    start = len(out) - offset
                    for i in range(length):  # may self-overlap, copy byte-wise
                        out.append(out[start + i])
                else:
                    out.append(body[pos])
                    pos += 1
        return bytes(out)
