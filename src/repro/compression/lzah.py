"""LZAH — LZ Aligned Header (Section 5).

The paper's hardware-optimized LZRW1 derivative. Three properties define
it, and all three are kept here:

1. **Word alignment.** A fixed window of ``word_bytes`` (16 in the
   prototype) slides across the input in word-aligned steps, so the
   hardware needs no variable-amount shifters. A window that contains a
   newline is cut just after it and the next window starts at the
   following character, re-aligning recurring per-line patterns (Figure 8).
   The cut word is zero-padded before hashing/storing so characters of the
   next line never pollute the hash table.

2. **Dictionary of whole words.** Like LZRW1, a hash table remembers the
   most recent occurrence of each word. A re-occurrence emits a 1-bit
   header plus the table index; a miss emits a 0-bit header plus the
   literal word.

3. **Aligned header chunks.** 128 header bits are gathered into one
   16-byte header word followed by the 128 payloads, and chunks are padded
   to word boundaries (Figure 9), so the decoder parses headers without
   shifting. Each page's stream is self-contained: the hash table resets
   per page, which is what lets storage pages decompress independently.

Stream layout produced by :meth:`LZAHCompressor.compress` (one page):

``u32 uncompressed_len | u32 num_pairs | u32 crc32 | chunk*``

where each chunk is ``header word (word_bytes) | payloads | zero padding
to word alignment`` and a payload is either a ``u16`` little-endian table
index (header bit 1) or a zero-padded literal word (header bit 0).

``crc32`` covers the *uncompressed* bytes, so any corruption of the
stream that changes the decoded output is detected
(:class:`repro.errors.CompressedFormatError`) instead of silently
returning wrong log lines — the durability property the robustness
suite's single-byte-corruption tests pin down.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.compression.base import Compressor
from repro.errors import CompressedFormatError
from repro.params import LZAHParams

_LEN_HEADER = 12  # u32 uncompressed_len + u32 num_pairs + u32 crc32
_INDEX_BYTES = 2


def _pad_to(buffer: bytearray, alignment: int) -> None:
    remainder = len(buffer) % alignment
    if remainder:
        buffer.extend(b"\0" * (alignment - remainder))


@dataclass(frozen=True)
class LZAHStats:
    """Encoder statistics for one compressed stream."""

    words: int
    matches: int
    literals: int

    @property
    def match_rate(self) -> float:
        return self.matches / self.words if self.words else 0.0


class LZAHCompressor(Compressor):
    """LZ Aligned Header encoder/decoder."""

    name = "LZAH"

    def __init__(self, params: Optional[LZAHParams] = None) -> None:
        self.params = params if params is not None else LZAHParams()
        if self.params.hash_table_slots > 1 << (8 * _INDEX_BYTES):
            raise ValueError("hash table too large for u16 match indices")
        self.last_stats: Optional[LZAHStats] = None

    # -- encoding ----------------------------------------------------------

    def _hash(self, word: bytes) -> int:
        return zlib.crc32(word) & (self.params.hash_table_slots - 1)

    def _window_words(self, data: bytes) -> Iterator[bytes]:
        """Yield zero-padded window words, cutting each window at a newline
        (unless newline realignment is ablated away)."""
        w = self.params.word_bytes
        realign = self.params.newline_realign
        pos = 0
        n = len(data)
        while pos < n:
            limit = min(pos + w, n)
            end = limit
            if realign:
                nl = data.find(b"\n", pos, limit)
                if nl != -1:
                    end = nl + 1
            word = data[pos:end]
            yield word + b"\0" * (w - len(word))
            pos = end

    def compress(self, data: bytes) -> bytes:
        p = self.params
        table: list[Optional[bytes]] = [None] * p.hash_table_slots
        pairs: list[tuple[bool, bytes]] = []
        append_pair = pairs.append
        matches = 0
        # window generation inlined from _window_words with loop
        # invariants bound to locals: compress dominates ingest host time
        # (page packing re-compresses chunks), so the per-word cost matters
        w = p.word_bytes
        realign = p.newline_realign
        mask = p.hash_table_slots - 1
        crc32 = zlib.crc32
        find_nl = data.find
        n = len(data)
        zero_pad = b"\0" * w
        pos = 0
        while pos < n:
            limit = pos + w
            if limit > n:
                limit = n
            end = limit
            if realign:
                nl = find_nl(b"\n", pos, limit)
                if nl != -1:
                    end = nl + 1
            word = data[pos:end]
            pos = end
            if len(word) != w:
                word = word + zero_pad[len(word) :]
            slot = crc32(word) & mask
            if table[slot] == word:
                matches += 1
                append_pair((True, slot.to_bytes(_INDEX_BYTES, "little")))
            else:
                table[slot] = word
                append_pair((False, word))
        self.last_stats = LZAHStats(
            words=len(pairs), matches=matches, literals=len(pairs) - matches
        )

        # chunks are word-aligned within the body; the 8-byte length header
        # is prepended afterwards so it does not disturb that alignment
        body = bytearray()
        for base in range(0, len(pairs), p.pairs_per_chunk):
            chunk = pairs[base : base + p.pairs_per_chunk]
            header = 0
            for i, (is_match, _) in enumerate(chunk):
                if is_match:
                    header |= 1 << i
            body.extend(header.to_bytes(p.pairs_per_chunk // 8, "little"))
            for _, payload in chunk:
                body.extend(payload)
            _pad_to(body, p.word_bytes)
        return (
            len(data).to_bytes(4, "little")
            + len(pairs).to_bytes(4, "little")
            + zlib.crc32(data).to_bytes(4, "little")
            + bytes(body)
        )

    # -- decoding ----------------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        """Decode one stream (fast path).

        Byte-identical to joining :meth:`decompress_words` — the
        equivalence suite pins that down — but restructured for host
        speed: loop invariants bound to locals, the per-word running CRC
        replaced by one C-level ``zlib.crc32`` over the joined output
        (CRC32 over a concatenation equals the running CRC over its
        pieces), and the word-trimming branch hoisted out of the common
        case. Every error case raises the same
        :class:`repro.errors.CompressedFormatError` as the reference
        decoder.
        """
        p = self.params
        if len(data) < _LEN_HEADER:
            raise CompressedFormatError("LZAH stream shorter than its header")
        total_len = int.from_bytes(data[0:4], "little")
        num_pairs = int.from_bytes(data[4:8], "little")
        expected_crc = int.from_bytes(data[8:12], "little")
        header_bytes = p.pairs_per_chunk // 8
        word_bytes = p.word_bytes
        slots = p.hash_table_slots
        realign = p.newline_realign
        pairs_per_chunk = p.pairs_per_chunk
        from_bytes = int.from_bytes
        data_len = len(data)

        table: list[Optional[bytes]] = [None] * slots
        hash_word = self._hash
        out: list[bytes] = []
        append = out.append
        pos = _LEN_HEADER
        produced = 0
        remaining = num_pairs
        while remaining > 0:
            if pos + header_bytes > data_len:
                raise CompressedFormatError("truncated LZAH chunk header")
            header = from_bytes(data[pos : pos + header_bytes], "little")
            pos += header_bytes
            in_chunk = remaining if remaining < pairs_per_chunk else pairs_per_chunk
            for _ in range(in_chunk):
                if header & 1:
                    if pos + _INDEX_BYTES > data_len:
                        raise CompressedFormatError("truncated LZAH match index")
                    slot = data[pos] | (data[pos + 1] << 8)
                    pos += _INDEX_BYTES
                    if slot >= slots:
                        raise CompressedFormatError(
                            f"LZAH match index {slot} outside table"
                        )
                    padded = table[slot]
                    if padded is None:
                        raise CompressedFormatError(
                            f"LZAH match references empty slot {slot}"
                        )
                else:
                    end = pos + word_bytes
                    if end > data_len:
                        raise CompressedFormatError("truncated LZAH literal word")
                    padded = data[pos:end]
                    pos = end
                    table[hash_word(padded)] = padded
                header >>= 1
                if realign:
                    nl = padded.find(b"\n")
                    consumed = padded[: nl + 1] if nl != -1 else padded
                else:
                    consumed = padded
                new_produced = produced + len(consumed)
                if new_produced > total_len:
                    # only the final window may overrun the declared length
                    consumed = consumed[: total_len - produced]
                    produced = total_len
                else:
                    produced = new_produced
                append(consumed)
            remaining -= in_chunk
            # skip the chunk's alignment padding
            tail = (pos - _LEN_HEADER) % word_bytes
            if tail:
                pos += word_bytes - tail
        if produced != total_len:
            raise CompressedFormatError(
                f"LZAH stream declared {total_len} bytes but decoded {produced}"
            )
        decoded = b"".join(out)
        if zlib.crc32(decoded) != expected_crc:
            raise CompressedFormatError(
                "LZAH stream checksum mismatch: decoded data is corrupt"
            )
        return decoded

    def decompress_into(self, data: bytes, arena) -> memoryview:
        """Decode one stream directly into a :class:`DecodeArena` buffer.

        Zero-copy variant of :meth:`decompress`: the declared
        uncompressed length sizes an arena view up front and every window
        word is written in place, so the page's text never exists as an
        intermediate ``bytes`` object. Byte-identical output and the same
        :class:`repro.errors.CompressedFormatError` cases as
        :meth:`decompress` — the differential suite pins both down. The
        returned view is valid only until the arena's next ``request``.
        """
        p = self.params
        if len(data) < _LEN_HEADER:
            raise CompressedFormatError("LZAH stream shorter than its header")
        total_len = int.from_bytes(data[0:4], "little")
        num_pairs = int.from_bytes(data[4:8], "little")
        expected_crc = int.from_bytes(data[8:12], "little")
        header_bytes = p.pairs_per_chunk // 8
        word_bytes = p.word_bytes
        slots = p.hash_table_slots
        realign = p.newline_realign
        pairs_per_chunk = p.pairs_per_chunk
        from_bytes = int.from_bytes
        data_len = len(data)

        # a corrupt header may declare an absurd total_len; the stream can
        # produce at most word_bytes per pair, so size the arena by what
        # the payload bytes could actually decode to and let the
        # produced != total_len check reject the lie without a huge alloc
        max_producible = (
            (data_len - _LEN_HEADER) // _INDEX_BYTES + pairs_per_chunk
        ) * word_bytes
        out = arena.request(min(total_len, max_producible))

        table: list[Optional[bytes]] = [None] * slots
        hash_word = self._hash
        pos = _LEN_HEADER
        produced = 0
        remaining = num_pairs
        while remaining > 0:
            if pos + header_bytes > data_len:
                raise CompressedFormatError("truncated LZAH chunk header")
            header = from_bytes(data[pos : pos + header_bytes], "little")
            pos += header_bytes
            in_chunk = remaining if remaining < pairs_per_chunk else pairs_per_chunk
            for _ in range(in_chunk):
                if header & 1:
                    if pos + _INDEX_BYTES > data_len:
                        raise CompressedFormatError("truncated LZAH match index")
                    slot = data[pos] | (data[pos + 1] << 8)
                    pos += _INDEX_BYTES
                    if slot >= slots:
                        raise CompressedFormatError(
                            f"LZAH match index {slot} outside table"
                        )
                    padded = table[slot]
                    if padded is None:
                        raise CompressedFormatError(
                            f"LZAH match references empty slot {slot}"
                        )
                else:
                    end = pos + word_bytes
                    if end > data_len:
                        raise CompressedFormatError("truncated LZAH literal word")
                    padded = data[pos:end]
                    pos = end
                    table[hash_word(padded)] = padded
                header >>= 1
                if realign:
                    nl = padded.find(b"\n")
                    consumed = padded[: nl + 1] if nl != -1 else padded
                else:
                    consumed = padded
                new_produced = produced + len(consumed)
                if new_produced > total_len:
                    # only the final window may overrun the declared length
                    consumed = consumed[: total_len - produced]
                    new_produced = total_len
                out[produced:new_produced] = consumed
                produced = new_produced
            remaining -= in_chunk
            # skip the chunk's alignment padding
            tail = (pos - _LEN_HEADER) % word_bytes
            if tail:
                pos += word_bytes - tail
        if produced != total_len:
            raise CompressedFormatError(
                f"LZAH stream declared {total_len} bytes but decoded {produced}"
            )
        if zlib.crc32(out) != expected_crc:
            raise CompressedFormatError(
                "LZAH stream checksum mismatch: decoded data is corrupt"
            )
        return out

    def decompress_words(self, data: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Decode a stream word by word (reference decoder).

        Yields ``(consumed, padded)`` per window word: ``consumed`` is the
        exact reconstructed byte span (what joining the stream yields), and
        ``padded`` is the full zero-padded word the hardware decoder would
        emit in its "zero-padded words for the tokenizer" configuration.
        This generator is the specification :meth:`decompress`'s fast path
        is equivalence-tested against; it also verifies the stream CRC
        incrementally, word by word, the way the hardware decoder does.
        """
        p = self.params
        if len(data) < _LEN_HEADER:
            raise CompressedFormatError("LZAH stream shorter than its header")
        total_len = int.from_bytes(data[0:4], "little")
        num_pairs = int.from_bytes(data[4:8], "little")
        expected_crc = int.from_bytes(data[8:12], "little")
        header_bytes = p.pairs_per_chunk // 8

        table: list[Optional[bytes]] = [None] * p.hash_table_slots
        pos = _LEN_HEADER
        produced = 0
        running_crc = 0
        remaining = num_pairs
        while remaining > 0:
            if pos + header_bytes > len(data):
                raise CompressedFormatError("truncated LZAH chunk header")
            header = int.from_bytes(data[pos : pos + header_bytes], "little")
            pos += header_bytes
            in_chunk = min(remaining, p.pairs_per_chunk)
            for i in range(in_chunk):
                if header & (1 << i):
                    if pos + _INDEX_BYTES > len(data):
                        raise CompressedFormatError("truncated LZAH match index")
                    slot = int.from_bytes(data[pos : pos + _INDEX_BYTES], "little")
                    pos += _INDEX_BYTES
                    if slot >= p.hash_table_slots:
                        raise CompressedFormatError(
                            f"LZAH match index {slot} outside table"
                        )
                    padded = table[slot]
                    if padded is None:
                        raise CompressedFormatError(
                            f"LZAH match references empty slot {slot}"
                        )
                else:
                    if pos + p.word_bytes > len(data):
                        raise CompressedFormatError("truncated LZAH literal word")
                    padded = data[pos : pos + p.word_bytes]
                    pos += p.word_bytes
                    table[self._hash(padded)] = padded
                if p.newline_realign:
                    nl = padded.find(b"\n")
                    consumed = padded[: nl + 1] if nl != -1 else padded
                else:
                    consumed = padded
                # the final window may be short without a newline; trim to
                # the declared uncompressed length
                if produced + len(consumed) > total_len:
                    consumed = consumed[: total_len - produced]
                produced += len(consumed)
                running_crc = zlib.crc32(consumed, running_crc)
                yield consumed, padded
            remaining -= in_chunk
            # skip the chunk's alignment padding
            tail = (pos - _LEN_HEADER) % p.word_bytes
            if tail:
                pos += p.word_bytes - tail
        if produced != total_len:
            raise CompressedFormatError(
                f"LZAH stream declared {total_len} bytes but decoded {produced}"
            )
        if running_crc != expected_crc:
            raise CompressedFormatError(
                "LZAH stream checksum mismatch: decoded data is corrupt"
            )
