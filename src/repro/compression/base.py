"""Compressor interface shared by all algorithms in this package."""

from __future__ import annotations

import abc

from repro.errors import CompressionError


class Compressor(abc.ABC):
    """A lossless byte-stream compressor.

    Implementations must satisfy ``decompress(compress(x)) == x`` for all
    byte strings ``x`` (the property tests enforce this).
    """

    #: Short display name used in Table 5-style reports.
    name: str = "base"

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; always succeeds (may expand on bad input)."""

    @abc.abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`; raises
        :class:`repro.errors.CompressedFormatError` on malformed input."""


def compression_ratio(compressor: Compressor, data: bytes) -> float:
    """Original-size / compressed-size, as reported in Table 5.

    Ratios above 1.0 mean the data shrank. An empty input has ratio 1.0 by
    convention.
    """
    if not data:
        return 1.0
    compressed = compressor.compress(data)
    if not compressed:
        raise CompressionError(
            f"{compressor.name} produced empty output for non-empty input"
        )
    return len(data) / len(compressed)
