"""Snappy block-format codec (Table 4's fourth comparison point).

Table 4 quotes a Snappy FPGA core (1.72 GB/s, 35 KLUT); this is the
matching software artifact: a from-scratch implementation of the
documented Snappy *block format* —

- a varint preamble carrying the uncompressed length,
- tag bytes whose low two bits select the element type:
  ``00`` literal (length in the high 6 bits, 60-63 escape to 1-4 extra
  length bytes), ``01`` copy with 11-bit offset and 4-11 byte length,
  ``10`` copy with 16-bit offset, ``11`` copy with 32-bit offset —

with the same greedy 4-byte-hash match finder the other LZ family
members here use.
"""

from __future__ import annotations

from repro.compression.base import Compressor
from repro.errors import CompressedFormatError

_MIN_MATCH = 4
_HASH_LOG = 15


def _hash4(value: int) -> int:
    return (value * 0x1E35A7BD) >> (32 - _HASH_LOG) & ((1 << _HASH_LOG) - 1)


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CompressedFormatError("truncated snappy varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 35:
            raise CompressedFormatError("snappy varint too long")


class SnappyLikeCompressor(Compressor):
    """Snappy block-format encoder/decoder."""

    name = "Snappy"

    # -- encoding ------------------------------------------------------

    def _emit_literal(self, out: bytearray, literal: bytes) -> None:
        n = len(literal)
        if n == 0:
            return
        length = n - 1
        if length < 60:
            out.append(length << 2)
        elif length < (1 << 8):
            out.append(60 << 2)
            out.append(length)
        elif length < (1 << 16):
            out.append(61 << 2)
            out.extend(length.to_bytes(2, "little"))
        elif length < (1 << 24):
            out.append(62 << 2)
            out.extend(length.to_bytes(3, "little"))
        else:
            out.append(63 << 2)
            out.extend(length.to_bytes(4, "little"))
        out.extend(literal)

    def _emit_copy(self, out: bytearray, offset: int, length: int) -> None:
        # split long matches into <=64-byte copies, as real snappy does
        while length >= 68:
            self._emit_copy_chunk(out, offset, 64)
            length -= 64
        if length > 64:
            self._emit_copy_chunk(out, offset, length - 60)
            length = 60
        self._emit_copy_chunk(out, offset, length)

    def _emit_copy_chunk(self, out: bytearray, offset: int, length: int) -> None:
        if 4 <= length <= 11 and offset < (1 << 11):
            out.append(0x01 | ((length - 4) << 2) | ((offset >> 8) << 5))
            out.append(offset & 0xFF)
        elif offset < (1 << 16):
            out.append(0x02 | ((length - 1) << 2))
            out.extend(offset.to_bytes(2, "little"))
        else:
            out.append(0x03 | ((length - 1) << 2))
            out.extend(offset.to_bytes(4, "little"))

    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        _write_varint(out, len(data))
        n = len(data)
        table = [-1] * (1 << _HASH_LOG)
        anchor = 0
        pos = 0
        while pos + _MIN_MATCH <= n:
            seq = int.from_bytes(data[pos : pos + 4], "little")
            h = _hash4(seq)
            candidate = table[h]
            table[h] = pos
            if (
                candidate >= 0
                and data[candidate : candidate + 4] == data[pos : pos + 4]
            ):
                match_len = 4
                while (
                    pos + match_len < n
                    and data[candidate + match_len] == data[pos + match_len]
                ):
                    match_len += 1
                self._emit_literal(out, data[anchor:pos])
                self._emit_copy(out, pos - candidate, match_len)
                pos += match_len
                anchor = pos
            else:
                pos += 1
        self._emit_literal(out, data[anchor:])
        return bytes(out)

    # -- decoding ------------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        expected, pos = _read_varint(data, 0)
        out = bytearray()
        n = len(data)
        while pos < n:
            tag = data[pos]
            pos += 1
            kind = tag & 0x03
            if kind == 0x00:  # literal
                length = (tag >> 2) + 1
                if length > 60:
                    extra = length - 60
                    if pos + extra > n:
                        raise CompressedFormatError("truncated literal length")
                    length = int.from_bytes(data[pos : pos + extra], "little") + 1
                    pos += extra
                if pos + length > n:
                    raise CompressedFormatError("truncated snappy literal")
                out.extend(data[pos : pos + length])
                pos += length
                continue
            if kind == 0x01:
                length = ((tag >> 2) & 0x07) + 4
                if pos >= n:
                    raise CompressedFormatError("truncated copy1 offset")
                offset = ((tag >> 5) << 8) | data[pos]
                pos += 1
            elif kind == 0x02:
                length = (tag >> 2) + 1
                if pos + 2 > n:
                    raise CompressedFormatError("truncated copy2 offset")
                offset = int.from_bytes(data[pos : pos + 2], "little")
                pos += 2
            else:
                length = (tag >> 2) + 1
                if pos + 4 > n:
                    raise CompressedFormatError("truncated copy4 offset")
                offset = int.from_bytes(data[pos : pos + 4], "little")
                pos += 4
            if offset == 0 or offset > len(out):
                raise CompressedFormatError(f"snappy offset {offset} out of range")
            start = len(out) - offset
            for i in range(length):  # overlap-safe
                out.append(out[start + i])
        if len(out) != expected:
            raise CompressedFormatError(
                f"snappy stream declared {expected} bytes, decoded {len(out)}"
            )
        return bytes(out)
