"""Reusable decode arena for the zero-copy scan path.

The vectorized scan decompresses every page of a partition through one
:class:`DecodeArena`: a single ``bytearray`` that grows monotonically to
the largest page seen and is recycled page after page.
:meth:`LZAHCompressor.decompress_into <repro.compression.lzah.LZAHCompressor.decompress_into>`
writes straight into it, so the steady state allocates **zero** bytes
objects per page — the tokenizer reads the returned ``memoryview``
directly (``np.frombuffer`` on the numpy backend).

The lifetime contract is strict and is what the PageCache arena-reuse
tests pin down: a view returned by :meth:`request` is valid only until
the next :meth:`request` call. Anything that must outlive the page —
kept lines, cache entries — must be copied out to immutable ``bytes``
first (``PageCache.put`` enforces this defensively).
"""

from __future__ import annotations

__all__ = ["DecodeArena"]


class DecodeArena:
    """A recycled page-decode buffer handing out sized memoryviews."""

    __slots__ = ("_buffer", "generation")

    def __init__(self, initial_bytes: int = 1 << 16) -> None:
        self._buffer = bytearray(max(1, initial_bytes))
        #: bumped on every :meth:`request`; lets tests assert that a view
        #: they held was invalidated by a later page decode
        self.generation = 0

    @property
    def capacity(self) -> int:
        return len(self._buffer)

    def request(self, size: int) -> memoryview:
        """A writable view of exactly ``size`` bytes.

        Invalidates every previously returned view (contents may be
        overwritten by the next decode). Growth rebinds a fresh, larger
        ``bytearray`` rather than resizing in place — resizing a
        ``bytearray`` with exported memoryviews raises ``BufferError``,
        and a straggler view into the *old* buffer is at least stable
        garbage rather than a crash.
        """
        self.generation += 1
        if size > len(self._buffer):
            self._buffer = bytearray(max(size, 2 * len(self._buffer)))
        return memoryview(self._buffer)[:size]
