"""Hardware decoder cycle model (Figure 10).

The LZAH decoder's claim is *deterministic* performance: one decompressed
word emitted per cycle regardless of compression ratio (Section 7.3.1).
The architecture that achieves it: header chunks land in shift registers,
payload words feed a multi-cycle shifter that extracts one payload per
cycle, and chunk padding is flushed in the same cycle the last payload
leaves.

This model counts those cycles for a real compressed stream, so the
benches can report GB/s the way the paper does:

- one cycle per emitted (decompressed) word — the output-side invariant,
- one cycle per chunk-header word to load the shift register.

Input-side bandwidth is never the bottleneck because the compressed
stream is no wider than the decompressed one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.compression.lzah import LZAHCompressor
from repro.params import CLOCK_HZ, LZAHParams


@dataclass(frozen=True)
class DecoderCycleCount:
    """Cycle accounting for decoding one LZAH stream."""

    output_words: int
    header_words: int
    decompressed_bytes: int
    clock_hz: int = CLOCK_HZ

    @property
    def cycles(self) -> int:
        return self.output_words + self.header_words

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz

    @property
    def throughput_bytes_per_sec(self) -> float:
        """Decompressed-data rate; ~word_bytes x clock for realistic logs."""
        if self.cycles == 0:
            return 0.0
        return self.decompressed_bytes / self.seconds


class DecoderCycleModel:
    """Counts hardware decoder cycles for LZAH streams."""

    def __init__(
        self,
        params: Optional[LZAHParams] = None,
        clock_hz: int = CLOCK_HZ,
    ) -> None:
        self.params = params if params is not None else LZAHParams()
        self.clock_hz = clock_hz
        self._codec = LZAHCompressor(self.params)

    def count(self, compressed: bytes) -> DecoderCycleCount:
        """Walk a compressed stream and count emit + header-load cycles."""
        words = 0
        nbytes = 0
        for consumed, _padded in self._codec.decompress_words(compressed):
            words += 1
            nbytes += len(consumed)
        headers = math.ceil(words / self.params.pairs_per_chunk) if words else 0
        return DecoderCycleCount(
            output_words=words,
            header_words=headers,
            decompressed_bytes=nbytes,
            clock_hz=self.clock_hz,
        )

    def deterministic_rate_bytes_per_sec(self) -> float:
        """The paper's headline figure: word width x clock (3.2 GB/s)."""
        return self.params.word_bytes * self.clock_hz
