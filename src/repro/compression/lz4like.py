"""LZ4 block-format compressor (Table 5 baseline).

The evaluation compares LZAH's compression ratio against LZ4; with no
network access the real liblz4 is unavailable, so this is a from-scratch
greedy LZ4 *block format* codec: token bytes with 4-bit literal/match
length nibbles (15 = extend with 255-run bytes), 2-byte little-endian
offsets, minimum match of 4, and a literal-only final sequence. The
format is the documented LZ4 block format; the match finder is a simple
single-entry hash table over 4-byte sequences, like LZ4's fast mode.
"""

from __future__ import annotations

from repro.compression.base import Compressor
from repro.errors import CompressedFormatError

_MIN_MATCH = 4
_MAX_OFFSET = 0xFFFF
_HASH_LOG = 16
#: LZ4's final-sequence rule: the last match must start at least this many
#: bytes before the end, so the stream always ends with literals.
_LAST_LITERALS = 5


def _hash4(value: int) -> int:
    return (value * 2654435761) >> (32 - _HASH_LOG) & ((1 << _HASH_LOG) - 1)


def _write_length(out: bytearray, length: int) -> None:
    """Emit the 255-run extension bytes for a nibble that saturated at 15."""
    length -= 15
    while length >= 255:
        out.append(255)
        length -= 255
    out.append(length)


class LZ4LikeCompressor(Compressor):
    """Greedy LZ4 block-format encoder/decoder."""

    name = "LZ4"

    def compress(self, data: bytes) -> bytes:
        n = len(data)
        out = bytearray()
        table = [-1] * (1 << _HASH_LOG)
        anchor = 0
        pos = 0
        limit = n - _LAST_LITERALS - _MIN_MATCH
        while pos <= limit:
            seq = int.from_bytes(data[pos : pos + 4], "little")
            h = _hash4(seq)
            candidate = table[h]
            table[h] = pos
            if (
                candidate >= 0
                and pos - candidate <= _MAX_OFFSET
                and data[candidate : candidate + 4] == data[pos : pos + 4]
            ):
                match_len = 4
                max_len = n - _LAST_LITERALS - pos
                while (
                    match_len < max_len
                    and data[candidate + match_len] == data[pos + match_len]
                ):
                    match_len += 1
                self._emit_sequence(
                    out, data[anchor:pos], pos - candidate, match_len
                )
                pos += match_len
                anchor = pos
            else:
                pos += 1
        # final literal-only sequence
        literals = data[anchor:]
        lit_len = len(literals)
        token = min(lit_len, 15) << 4
        out.append(token)
        if lit_len >= 15:
            _write_length(out, lit_len)
        out.extend(literals)
        return bytes(out)

    def _emit_sequence(
        self, out: bytearray, literals: bytes, offset: int, match_len: int
    ) -> None:
        lit_len = len(literals)
        ml = match_len - _MIN_MATCH
        token = (min(lit_len, 15) << 4) | min(ml, 15)
        out.append(token)
        if lit_len >= 15:
            _write_length(out, lit_len)
        out.extend(literals)
        out.extend(offset.to_bytes(2, "little"))
        if ml >= 15:
            _write_length(out, ml)

    def decompress(self, data: bytes) -> bytes:
        out = bytearray()
        pos = 0
        n = len(data)
        if n == 0:
            raise CompressedFormatError("empty LZ4 block")
        while pos < n:
            token = data[pos]
            pos += 1
            lit_len = token >> 4
            if lit_len == 15:
                lit_len, pos = self._read_length(data, pos, lit_len)
            if pos + lit_len > n:
                raise CompressedFormatError("truncated LZ4 literals")
            out.extend(data[pos : pos + lit_len])
            pos += lit_len
            if pos == n:
                break  # final literal-only sequence
            if pos + 2 > n:
                raise CompressedFormatError("truncated LZ4 offset")
            offset = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
            if offset == 0 or offset > len(out):
                raise CompressedFormatError(f"LZ4 offset {offset} out of range")
            match_len = token & 0x0F
            if match_len == 15:
                match_len, pos = self._read_length(data, pos, match_len)
            match_len += _MIN_MATCH
            start = len(out) - offset
            for i in range(match_len):  # overlap-safe byte-wise copy
                out.append(out[start + i])
        return bytes(out)

    @staticmethod
    def _read_length(data: bytes, pos: int, base: int) -> tuple[int, int]:
        length = base
        while True:
            if pos >= len(data):
                raise CompressedFormatError("truncated LZ4 length run")
            byte = data[pos]
            pos += 1
            length += byte
            if byte != 255:
                return length, pos
