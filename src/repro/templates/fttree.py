"""FT-tree: frequency-tree template extraction (Zhang et al. [84, 85]).

The method, as the paper uses it:

1. Count the global frequency of every token in the corpus.
2. For each line, take its *unique* tokens sorted by descending global
   frequency (position in the line is ignored), truncated to a maximum
   depth, and insert that list as a path into a tree. More-frequent
   tokens therefore sit closer to the root.
3. Prune: a node whose child count exceeds a threshold has its children
   collapsed into a single wildcard — those children are variable fields
   (IP addresses, PIDs, ...), not message structure.
4. Every remaining root-to-leaf path is a template; its non-wildcard
   tokens are the template's keywords.

Section 4.3's observation makes these templates offloadable: a line
belongs to the template whose path its sorted tokens trace, and tracing
is equivalent to requiring all path tokens present plus the *negation of
every higher-frequency sibling* at each branch (lower-frequency siblings
cannot divert the sorted walk). :meth:`FTTree.template_query` implements
exactly that rule, reproducing the paper's
``(A and B)`` / ``(A and C and not B and D and E)`` example.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.query import IntersectionSet, Query, Term
from repro.core.tokenizer import split_tokens
from repro.errors import QueryError

#: Marker token for pruned variable fields.
WILDCARD = b"\x00*"


@dataclass(frozen=True)
class FTTreeParams:
    """FT-tree construction parameters (defaults follow [84]'s spirit:
    shallow trees, small fan-out thresholds).

    ``max_doc_frequency`` below 1.0 drops near-universal tokens
    (log-format boilerplate such as month names appearing on every line)
    before path construction — the detagging step log parsers apply so
    that template paths consist of *message* structure, not header
    structure. The default of 1.0 disables it, matching the base
    algorithm; corpora with syslog headers should set ~0.9.
    """

    max_depth: int = 6
    prune_threshold: int = 8
    min_support: int = 2
    max_doc_frequency: float = 1.0

    def __post_init__(self) -> None:
        if self.max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if self.prune_threshold <= 1:
            raise ValueError("prune_threshold must exceed 1")
        if self.min_support <= 0:
            raise ValueError("min_support must be positive")
        if not 0 < self.max_doc_frequency <= 1:
            raise ValueError("max_doc_frequency must be in (0, 1]")


@dataclass
class FTNode:
    """One tree node: a token with its subtree and line support.

    ``count`` is the number of lines whose path passes through this node;
    ``end_count`` the number whose path ends exactly here — templates can
    be prefixes of longer templates, so ends matter, not just leaves.
    """

    token: bytes
    count: int = 0
    end_count: int = 0
    children: dict[bytes, "FTNode"] = field(default_factory=dict)

    @property
    def is_wildcard(self) -> bool:
        return self.token == WILDCARD


@dataclass(frozen=True)
class Template:
    """An extracted template: its keyword path and line support."""

    template_id: int
    tokens: tuple[bytes, ...]
    support: int

    def __str__(self) -> str:
        path = " ".join(t.decode("utf-8", "replace") for t in self.tokens)
        return f"T{self.template_id}<{path}> (x{self.support})"


class FTTree:
    """A built frequency tree with its extracted templates."""

    def __init__(
        self,
        root: FTNode,
        frequencies: Counter,
        params: FTTreeParams,
        stopwords: frozenset[bytes] = frozenset(),
    ) -> None:
        self.root = root
        self.frequencies = frequencies
        self.params = params
        self.stopwords = stopwords
        self.templates: list[Template] = self._extract_templates()

    # -- construction ----------------------------------------------------

    @classmethod
    def from_lines(
        cls, lines: Iterable[bytes], params: Optional[FTTreeParams] = None
    ) -> "FTTree":
        """Build the tree from raw log lines (two passes)."""
        params = params if params is not None else FTTreeParams()
        materialised = [split_tokens(line) for line in lines]
        frequencies: Counter = Counter()
        for tokens in materialised:
            frequencies.update(set(tokens))
        if params.max_doc_frequency < 1.0:
            cutoff = params.max_doc_frequency * len(materialised)
            stopwords = frozenset(
                token for token, count in frequencies.items() if count > cutoff
            )
        else:
            stopwords = frozenset()
        root = FTNode(token=b"")
        for tokens in materialised:
            path = cls._sorted_path(
                tokens, frequencies, params.max_depth, stopwords
            )
            cls._insert_path(root, path)
        cls._prune(root, params.prune_threshold)
        return cls(
            root=root, frequencies=frequencies, params=params, stopwords=stopwords
        )

    @staticmethod
    def _sorted_path(
        tokens: Sequence[bytes],
        frequencies: Counter,
        max_depth: int,
        stopwords: frozenset[bytes] = frozenset(),
    ) -> list[bytes]:
        unique = sorted(
            set(tokens) - stopwords, key=lambda t: (-frequencies[t], t)
        )
        return unique[:max_depth]

    @staticmethod
    def _insert_path(root: FTNode, path: Sequence[bytes]) -> None:
        node = root
        node.count += 1
        for token in path:
            child = node.children.get(token)
            if child is None:
                child = FTNode(token=token)
                node.children[token] = child
            node = child
            node.count += 1
        node.end_count += 1

    @classmethod
    def _prune(cls, node: FTNode, threshold: int) -> None:
        if len(node.children) > threshold:
            # high fan-out: these children are a variable field
            wildcard = FTNode(token=WILDCARD)
            wildcard.count = sum(c.count for c in node.children.values())
            wildcard.end_count = sum(c.end_count for c in node.children.values())
            # merge grandchildren under the wildcard so deeper structure,
            # if consistent, survives the collapse
            for child in node.children.values():
                for token, grandchild in child.children.items():
                    kept = wildcard.children.get(token)
                    if kept is None:
                        wildcard.children[token] = grandchild
                    else:
                        cls._merge(kept, grandchild)
            node.children = {WILDCARD: wildcard}
        for child in node.children.values():
            cls._prune(child, threshold)

    @classmethod
    def _merge(cls, into: FTNode, other: FTNode) -> None:
        into.count += other.count
        into.end_count += other.end_count
        for token, child in other.children.items():
            kept = into.children.get(token)
            if kept is None:
                into.children[token] = child
            else:
                cls._merge(kept, child)

    # -- template extraction ----------------------------------------------

    def _extract_templates(self) -> list[Template]:
        # templates are paths where lines *end*; a wildcard end folds into
        # its parent's keyword path, so collect into a dict to merge
        collected: dict[tuple[bytes, ...], int] = {}

        def walk(node: FTNode, path: tuple[bytes, ...]) -> None:
            here = (
                path
                if node.is_wildcard or node.token == b""
                else path + (node.token,)
            )
            if node.end_count and here:
                collected[here] = collected.get(here, 0) + node.end_count
            for child in node.children.values():
                walk(child, here)

        walk(self.root, ())
        survivors = [
            (tokens, support)
            for tokens, support in collected.items()
            if support >= self.params.min_support
        ]
        # deterministic order: by support descending, then path
        survivors.sort(key=lambda item: (-item[1], item[0]))
        return [
            Template(template_id=i, tokens=tokens, support=support)
            for i, (tokens, support) in enumerate(survivors)
        ]

    # -- template -> query compilation (Section 4.3) -----------------------

    def template_query(self, template: Template) -> Query:
        """Compile one template into an offloadable intersection set.

        Path tokens become positive terms; at each branch, siblings with
        *higher* global frequency than the taken edge become negative
        terms (a line containing one would have routed down that sibling
        instead).
        """
        def sort_key(token: bytes) -> tuple[int, bytes]:
            # must be the exact order _sorted_path uses, ties included
            return (-self.frequencies[token], token)

        terms: list[Term] = []
        seen_positive: set[bytes] = set()
        negations: set[bytes] = set()
        node = self.root
        for token in template.tokens:
            child = self._descend(node, token)
            for sibling_token in node.children:
                if sibling_token in (token, WILDCARD):
                    continue
                # a sibling ordered before this token would divert the
                # sorted walk if present, so its absence is required
                if sort_key(sibling_token) < sort_key(token):
                    negations.add(sibling_token)
            seen_positive.add(token)
            terms.append(Term(token))
            node = child
        for neg in sorted(negations - seen_positive):
            terms.append(Term(neg, negative=True))
        if not terms:
            raise QueryError(f"template {template.template_id} has no keywords")
        return Query.of(IntersectionSet(terms=tuple(terms)))

    def _descend(self, node: FTNode, token: bytes) -> FTNode:
        child = node.children.get(token)
        if child is not None:
            return child
        wildcard = node.children.get(WILDCARD)
        if wildcard is not None:
            inner = wildcard.children.get(token)
            if inner is not None:
                return inner
            return wildcard
        raise QueryError(f"template token {token!r} not found in tree")

    # -- classification -----------------------------------------------------

    def classify_line(self, line: bytes) -> Optional[Template]:
        """Find the template a line belongs to by tracing the sorted walk.

        Returns ``None`` when the line's path leaves the tree (no
        template has enough support) — the paper's systems would treat
        such lines as unparsed.
        """
        path = self._sorted_path(
            split_tokens(line),
            self.frequencies,
            self.params.max_depth,
            self.stopwords,
        )
        node = self.root
        keywords: list[bytes] = []
        for token in path:
            child = node.children.get(token)
            if child is None:
                child = node.children.get(WILDCARD)
                if child is None:
                    break
                node = child
                continue
            node = child
            keywords.append(token)
        wanted = tuple(keywords)
        for template in self.templates:
            if template.tokens == wanted:
                return template
        return None
