"""Log template extraction and machine-generated query workloads.

The evaluation (Section 7.1) drives every system with queries generated
from FT-tree [84, 85], a frequency-tree log parsing method: tokens that
occur more often globally sit closer to the root, lines insert their
frequency-sorted token lists as paths, and high-fanout nodes (variable
fields) are pruned into wildcards. Root-to-leaf paths are templates.

- :mod:`repro.templates.fttree` — the frequency-tree extractor plus the
  Section 4.3 template-to-query compiler (sibling negation rule),
- :mod:`repro.templates.prefixtree` — a prefix-tree extractor whose
  templates compile to column-constrained queries,
- :mod:`repro.templates.querygen` — the single/OR-2/OR-8 query batches
  used by all benchmarks.
"""

from repro.templates.fttree import FTTree, FTTreeParams, Template
from repro.templates.prefixtree import PrefixTree, PrefixTreeParams
from repro.templates.querygen import QueryWorkload, build_workload

__all__ = [
    "FTTree",
    "FTTreeParams",
    "PrefixTree",
    "PrefixTreeParams",
    "QueryWorkload",
    "Template",
    "build_workload",
]
