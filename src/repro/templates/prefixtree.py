"""Prefix-tree template extraction (the Drain/Spell family [6, 15, 17]).

Unlike FT-tree, a prefix tree keys on token *position*: the first token
is the root level, the second the next, and so on; high-fanout levels
(variable fields) collapse into wildcards. Section 4.3 notes MithriLog
supports these templates too by adding a column field to each hash-table
entry — so this extractor compiles its templates into column-constrained
queries (:class:`repro.core.query.Term` with ``column`` set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.query import IntersectionSet, Query, Term
from repro.core.tokenizer import split_tokens
from repro.errors import QueryError
from repro.templates.fttree import Template, WILDCARD


@dataclass(frozen=True)
class PrefixTreeParams:
    """Prefix-tree construction parameters."""

    max_depth: int = 5
    prune_threshold: int = 8
    min_support: int = 2

    def __post_init__(self) -> None:
        if self.max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if self.prune_threshold <= 1:
            raise ValueError("prune_threshold must exceed 1")
        if self.min_support <= 0:
            raise ValueError("min_support must be positive")


@dataclass
class _PNode:
    token: bytes
    count: int = 0
    end_count: int = 0
    children: dict[bytes, "_PNode"] = field(default_factory=dict)


class PrefixTree:
    """A built prefix tree with its extracted positional templates."""

    def __init__(self, root: _PNode, params: PrefixTreeParams) -> None:
        self.root = root
        self.params = params
        self.templates: list[Template] = self._extract_templates()

    @classmethod
    def from_lines(
        cls, lines: Iterable[bytes], params: Optional[PrefixTreeParams] = None
    ) -> "PrefixTree":
        params = params if params is not None else PrefixTreeParams()
        root = _PNode(token=b"")
        for line in lines:
            tokens = split_tokens(line)[: params.max_depth]
            node = root
            node.count += 1
            for token in tokens:
                child = node.children.get(token)
                if child is None:
                    child = _PNode(token=token)
                    node.children[token] = child
                node = child
                node.count += 1
            node.end_count += 1
        cls._prune(root, params.prune_threshold)
        return cls(root=root, params=params)

    @classmethod
    def _prune(cls, node: _PNode, threshold: int) -> None:
        if len(node.children) > threshold:
            wildcard = _PNode(token=WILDCARD)
            wildcard.count = sum(c.count for c in node.children.values())
            wildcard.end_count = sum(c.end_count for c in node.children.values())
            for child in node.children.values():
                for token, grandchild in child.children.items():
                    kept = wildcard.children.get(token)
                    if kept is None:
                        wildcard.children[token] = grandchild
                    else:
                        cls._merge(kept, grandchild)
            node.children = {WILDCARD: wildcard}
        for child in node.children.values():
            cls._prune(child, threshold)

    @classmethod
    def _merge(cls, into: _PNode, other: _PNode) -> None:
        into.count += other.count
        into.end_count += other.end_count
        for token, child in other.children.items():
            kept = into.children.get(token)
            if kept is None:
                into.children[token] = child
            else:
                cls._merge(kept, child)

    def _extract_templates(self) -> list[Template]:
        # wildcards stay in the path as position holders
        collected: dict[tuple[bytes, ...], int] = {}

        def walk(node: _PNode, path: tuple[bytes, ...]) -> None:
            here = path if node.token == b"" else path + (node.token,)
            if node.end_count and here:
                collected[here] = collected.get(here, 0) + node.end_count
            for child in node.children.values():
                walk(child, here)

        walk(self.root, ())
        survivors = [
            (tokens, support)
            for tokens, support in collected.items()
            if support >= self.params.min_support
        ]
        survivors.sort(key=lambda item: (-item[1], item[0]))
        return [
            Template(template_id=i, tokens=tokens, support=support)
            for i, (tokens, support) in enumerate(survivors)
        ]

    def template_query(self, template: Template) -> Query:
        """Compile a positional template into a column-constrained query.

        Wildcard positions carry no constraint; keyword positions require
        the exact token at that column. This is the Section 4.3 prefix
        extension: the datapath is unchanged, only the hash entry gains a
        column field.
        """
        terms = tuple(
            Term(token, column=position)
            for position, token in enumerate(template.tokens)
            if token != WILDCARD
        )
        if not terms:
            raise QueryError(
                f"template {template.template_id} is all wildcards; "
                "nothing to query"
            )
        return Query.of(IntersectionSet(terms=terms))
