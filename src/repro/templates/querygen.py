"""Machine-generated query workloads (Section 7.1).

The paper evaluates every system with:

- all single template queries extracted by FT-tree,
- 100 random OR-combinations of two queries,
- 16 random OR-combinations of eight queries,

with the *same* randomly generated combinations used for every system.
:func:`build_workload` reproduces that construction deterministically
from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.query import Query
from repro.errors import QueryError
from repro.templates.fttree import FTTree


@dataclass(frozen=True)
class QueryWorkload:
    """The three query batches driven against each system."""

    singles: tuple[Query, ...]
    pairs: tuple[Query, ...]
    eights: tuple[Query, ...]

    @property
    def all_batches(self) -> dict[int, tuple[Query, ...]]:
        """Batch size -> queries, as the evaluation tables group them."""
        return {1: self.singles, 2: self.pairs, 8: self.eights}

    def total_queries(self) -> int:
        return len(self.singles) + len(self.pairs) + len(self.eights)


def combine(queries: Sequence[Query]) -> Query:
    """OR-join queries into one concurrent offloadable query."""
    if not queries:
        raise QueryError("cannot combine zero queries")
    joined = queries[0]
    for query in queries[1:]:
        joined = joined | query
    return joined


def build_workload(
    tree: FTTree,
    num_pairs: int = 100,
    num_eights: int = 16,
    seed: int = 2021,
    max_singles: Optional[int] = None,
) -> QueryWorkload:
    """Generate the Section 7.1 workload from an FT-tree.

    Combinations sample templates uniformly without replacement within
    each combination; the RNG is seeded so all systems (and all runs)
    see identical batches.
    """
    singles = tuple(tree.template_query(t) for t in tree.templates)
    if max_singles is not None:
        singles = singles[:max_singles]
    if not singles:
        raise QueryError("FT-tree produced no templates to query")
    rng = random.Random(seed)

    def sample_combo(size: int) -> Query:
        k = min(size, len(singles))
        return combine(rng.sample(singles, k))

    pairs = tuple(sample_combo(2) for _ in range(num_pairs))
    eights = tuple(sample_combo(8) for _ in range(num_eights))
    return QueryWorkload(singles=singles, pairs=pairs, eights=eights)
